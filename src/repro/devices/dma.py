"""The DMA path: how device memory accesses reach physical memory.

Devices never touch :class:`~repro.memory.physical.PhysicalMemory`
directly; every access goes through a :class:`DmaBus` configured with a
translation backend:

* :class:`IdentityBackend` — IOMMU disabled (the paper's ``none`` mode);
  device addresses *are* physical addresses.
* :class:`IommuBackend` — baseline IOMMU; device addresses are IOVAs
  translated page-by-page through the radix tables / IOTLB.
* :class:`RIommuBackend` — rIOMMU; device addresses are packed rIOVAs
  translated through the flat tables / rIOTLB.

The bus is where protection becomes real: a DMA to an unmapped or
out-of-bounds address raises an I/O page fault out of the device model,
exactly where the real hardware would abort the transaction.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import datapath as _datapath
from repro.core.riotlb import RIommuHardware
from repro.core.structures import unpack_iova
from repro.dma import DmaDirection
from repro.faults import PermissionFault
from repro.iommu.hardware import Iommu
from repro.iommu.iotlb import IotlbEntry
from repro.iommu.page_table import direction_allowed
from repro.memory.address import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, page_offset
from repro.memory.physical import MemorySystem
from repro.obs.tracer import TRACE

#: Single-page translation fast path + per-burst memo (identical model
#: cycles, less Python overhead).  Governed by ``REPRO_DATAPATH`` (see
#: :mod:`repro.datapath`); parity tests also toggle this at runtime.
FASTPATH_ENABLED = _datapath.FASTPATH_ENABLED

#: Scatter-gather bulk datapath (batched translation + bulk copies —
#: identical model cycles and fault behaviour, fewer Python dispatches).
#: Governed by ``REPRO_DATAPATH``; parity tests also toggle this.
BATCH_ENABLED = _datapath.BATCH_ENABLED


class TranslationBackend(abc.ABC):
    """Maps a device-visible address range to physical ranges."""

    @abc.abstractmethod
    def translate_range(
        self, bdf: int, addr: int, size: int, direction: DmaDirection
    ) -> List[Tuple[int, int]]:
        """Return [(phys_addr, length), ...] covering ``size`` bytes at ``addr``."""

    def translate_sg(
        self, bdf: int, addr: int, size: int, direction: DmaDirection
    ) -> List[Tuple[int, int]]:
        """Scatter-gather translation: extents for a bulk copy.

        Like :meth:`translate_range`, but backends that translate
        page-by-page merge physically-contiguous runs into single
        extents so the copy layer touches each run once.  Identity and
        rIOMMU backends already produce one extent per access, so the
        default simply defers to :meth:`translate_range`.
        """
        return self.translate_range(bdf, addr, size, direction)


class IdentityBackend(TranslationBackend):
    """No IOMMU: device addresses are physical addresses."""

    def translate_range(
        self, bdf: int, addr: int, size: int, direction: DmaDirection
    ) -> List[Tuple[int, int]]:
        return [(addr, size)]


class IommuBackend(TranslationBackend):
    """Baseline IOMMU: translate each page the access touches.

    With :meth:`enable_memo` (opted into by the network driver, *not*
    on by default), repeated accesses to the same (bdf, vpn) within a
    burst are resolved from a local memo instead of re-entering the
    full IOMMU datapath.  The memo replays every observable side effect
    of the IOTLB-hit path (counters, traces, permission checks) so
    results and stats are unchanged; it is dropped wholesale whenever
    the IOMMU's attachment epoch or the IOTLB's invalidation generation
    moves, so it can never outlive an unmap or invalidation — the
    deferred-mode vulnerability window is exactly as wide as before.
    """

    def __init__(self, iommu: Iommu) -> None:
        self.iommu = iommu
        self.memo_enabled = False
        self._memo: Dict[Tuple[int, int], IotlbEntry] = {}
        self._memo_token: Optional[Tuple[int, int]] = None

    def enable_memo(self) -> None:
        """Opt in to the per-burst translation memo."""
        self.memo_enabled = True

    def translate_range(
        self, bdf: int, addr: int, size: int, direction: DmaDirection
    ) -> List[Tuple[int, int]]:
        translate = (
            self._translate_memo
            if FASTPATH_ENABLED and self.memo_enabled
            else self.iommu.translate
        )
        # Fast path: the access stays within one page — one translation,
        # no chunk bookkeeping.  Byte-identical to the loop below.
        if FASTPATH_ENABLED and 0 < size <= PAGE_SIZE - page_offset(addr):
            return [(translate(bdf, addr, direction), size)]
        ranges: List[Tuple[int, int]] = []
        pos = 0
        while pos < size:
            chunk = min(PAGE_SIZE - page_offset(addr + pos), size - pos)
            phys = translate(bdf, addr + pos, direction)
            ranges.append((phys, chunk))
            pos += chunk
        return ranges

    def translate_sg(
        self, bdf: int, addr: int, size: int, direction: DmaDirection
    ) -> List[Tuple[int, int]]:
        """Batched per-page translation with contiguous-extent merging.

        One IOTLB (or memo) probe per 4 KiB page — every observable side
        effect of the scalar loop is replayed per page, and faults still
        raise at the exact faulting page — but the per-page Python
        dispatch through ``translate``/``translate_range`` is inlined,
        and pages that resolve to adjacent frames are merged into one
        extent for the bulk copy layer.
        """
        if not BATCH_ENABLED:
            return self.translate_range(bdf, addr, size, direction)
        iommu = self.iommu
        memo = None
        if FASTPATH_ENABLED and self.memo_enabled:
            token = (iommu.epoch, iommu.iotlb.generation)
            if token != self._memo_token:
                self._memo.clear()
                self._memo_token = token
            memo = self._memo
        translate = iommu.translate
        iommu_stats = iommu.stats
        iotlb = iommu.iotlb
        iotlb_stats = iotlb.stats
        coherency_stats = iommu.coherency.stats
        trace_hook = iommu.trace_hook
        # Loop-invariant: emits inside this call cannot toggle the tracer.
        trace_active = TRACE.active
        ranges: List[Tuple[int, int]] = []
        run_phys = 0  # physical start of the extent being built
        run_len = 0
        next_phys = -1  # phys addr the next chunk must hit to extend the run
        pos = 0
        while pos < size:
            a = addr + pos
            chunk = PAGE_SIZE - (a & PAGE_MASK)
            rem = size - pos
            if chunk > rem:
                chunk = rem
            if memo is not None:
                vpn = a >> PAGE_SHIFT
                entry = memo.get((bdf, vpn))
                if entry is not None:
                    # Memo hit: replay the IOTLB-hit path's observables
                    # (see _translate_memo).
                    iommu_stats.translations += 1
                    if trace_hook is not None:
                        trace_hook(bdf, vpn)
                    if trace_active:
                        TRACE.emit("translate", layer="iommu", bdf=bdf, iova=a)
                        TRACE.emit("iotlb_hit", layer="iommu", bdf=bdf, vpn=vpn)
                        if not entry.backing_valid:
                            TRACE.emit("iotlb_stale", layer="iommu", bdf=bdf, vpn=vpn)
                    coherency_stats.hardware_reads += 2
                    iotlb_stats.hits += 1
                    if not entry.backing_valid:
                        iotlb_stats.stale_hits += 1
                    if not direction_allowed(entry.perms, direction):
                        raise PermissionFault(
                            f"IOVA {a:#x} does not permit {direction!r}",
                            bdf=bdf,
                            iova=a,
                        )
                    phys = entry.frame_addr | (a & PAGE_MASK)
                else:
                    phys = translate(bdf, a, direction)
                    cached = iotlb.peek(iommu.page_table_of(bdf).domain_id, vpn)
                    if cached is not None:
                        memo[(bdf, vpn)] = cached
            else:
                phys = translate(bdf, a, direction)
            if phys == next_phys:
                run_len += chunk
            else:
                if run_len:
                    ranges.append((run_phys, run_len))
                run_phys = phys
                run_len = chunk
            next_phys = phys + chunk
            pos += chunk
        if run_len:
            ranges.append((run_phys, run_len))
        return ranges

    def _translate_memo(self, bdf: int, iova: int, direction: DmaDirection) -> int:
        """Translate via the memo, falling back to the real datapath.

        The validity token pairs the IOMMU's attachment epoch with the
        IOTLB's invalidation generation; any attach/detach, IOTLB
        invalidation, or backing-PTE teardown moves one of them and
        empties the memo.  Memo hits replay the IOTLB-hit path's
        observable effects; the only divergence is unobservable — LRU
        recency is not refreshed, and the context-table staleness check
        is skipped (context entries are always synced when written).
        """
        iommu = self.iommu
        token = (iommu.epoch, iommu.iotlb.generation)
        if token != self._memo_token:
            self._memo.clear()
            self._memo_token = token
        vpn = iova >> PAGE_SHIFT
        entry = self._memo.get((bdf, vpn))
        if entry is not None:
            iommu.stats.translations += 1
            if iommu.trace_hook is not None:
                iommu.trace_hook(bdf, vpn)
            if TRACE.active:
                TRACE.emit("translate", layer="iommu", bdf=bdf, iova=iova)
                TRACE.emit("iotlb_hit", layer="iommu", bdf=bdf, vpn=vpn)
                if not entry.backing_valid:
                    TRACE.emit("iotlb_stale", layer="iommu", bdf=bdf, vpn=vpn)
            # The context-table lookup reads two entries per translation.
            iommu.coherency.stats.hardware_reads += 2
            stats = iommu.iotlb.stats
            stats.hits += 1
            if not entry.backing_valid:
                stats.stale_hits += 1
            if not direction_allowed(entry.perms, direction):
                raise PermissionFault(
                    f"IOVA {iova:#x} does not permit {direction!r}",
                    bdf=bdf,
                    iova=iova,
                )
            return entry.frame_addr | (iova & PAGE_MASK)
        phys = iommu.translate(bdf, iova, direction)
        cached = iommu.iotlb.peek(iommu.page_table_of(bdf).domain_id, vpn)
        if cached is not None:
            self._memo[(bdf, vpn)] = cached
        return phys


class RIommuBackend(TranslationBackend):
    """rIOMMU: device addresses are packed rIOVAs.

    A single rPTE maps a contiguous physical region, so one access needs
    one translation — but the *last* byte is also translated so that the
    fine-grained bounds check covers the whole access, as the hardware's
    length-aware transaction check would.
    """

    def __init__(self, hardware: RIommuHardware) -> None:
        self.hardware = hardware

    def translate_range(
        self, bdf: int, addr: int, size: int, direction: DmaDirection
    ) -> List[Tuple[int, int]]:
        if _datapath.COLUMNAR_ENABLED:
            # Folded start+end translation (rtranslate_span falls back to
            # the scalar pair itself for cold/sync/fault/traced cases).
            return [(self.hardware.rtranslate_span(bdf, addr, size, direction), size)]
        iova = unpack_iova(addr)
        phys = self.hardware.rtranslate(bdf, iova, direction)
        if size > 1:
            # Bounds-check the end of the access (no extra rIOTLB traffic
            # in real hardware — the entry is already current).
            self.hardware.rtranslate(
                bdf, iova.with_offset(iova.offset + size - 1), direction
            )
        return [(phys, size)]


class SwptBackend(TranslationBackend):
    """Software pass-through (paper §5.1 methodology validation).

    The IOMMU is on, and a page table maps the *entire* physical memory
    with IOVA == PA.  Every DMA therefore goes through the IOTLB — and,
    with a working set larger than the IOTLB, misses on nearly every
    packet — yet translates to the identical address.  The paper used
    this against HWpt (hardware pass-through: IOMMU bypasses the IOTLB
    entirely) to show that IOTLB misses are performance-invisible at
    NIC latencies.
    """

    def __init__(self, iotlb) -> None:
        from repro.iommu.iotlb import Iotlb, IotlbEntry

        self.iotlb: "Iotlb" = iotlb
        self._entry_cls = IotlbEntry
        #: radix levels "walked" on each miss, for accounting
        self.walk_levels = 0

    def translate_range(
        self, bdf: int, addr: int, size: int, direction: DmaDirection
    ) -> List[Tuple[int, int]]:
        ranges: List[Tuple[int, int]] = []
        pos = 0
        while pos < size:
            chunk = min(PAGE_SIZE - page_offset(addr + pos), size - pos)
            vpn = (addr + pos) >> 12
            entry = self.iotlb.lookup(bdf, vpn)
            if entry is None:
                # The identity table always resolves; a real walk reads
                # four levels.
                self.walk_levels += 4
                self.iotlb.insert(
                    self._entry_cls(tag=bdf, vpn=vpn, frame_addr=vpn << 12, perms=0b111)
                )
            ranges.append((addr + pos, chunk))
            pos += chunk
        return ranges


class HwptBackend(IdentityBackend):
    """Hardware pass-through: IOMMU enabled but translating 1:1 without
    consulting the IOTLB or any page table (paper §5.1)."""


@dataclass
class DmaBusStats:
    """Counts of device-initiated reads/writes and moved bytes."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


class DmaBus:
    """Routes device DMAs through a translation backend to memory."""

    def __init__(self, mem: MemorySystem, backend: TranslationBackend) -> None:
        self.mem = mem
        self.backend = backend
        self.stats = DmaBusStats()

    def enable_translation_memo(self) -> None:
        """Opt in to the backend's per-burst translation memo, if any.

        Only backends that expose ``enable_memo`` (the baseline
        :class:`IommuBackend`) participate; for the rest this is a
        no-op.  Kept opt-in so measurement rigs that study raw IOTLB
        behaviour (e.g. the miss-penalty experiment) see an unmediated
        datapath.
        """
        enable = getattr(self.backend, "enable_memo", None)
        if enable is not None:
            enable()

    def dma_read(self, bdf: int, addr: int, size: int) -> bytes:
        """Device reads ``size`` bytes from device-address ``addr`` (Tx)."""
        if size <= 0:
            raise ValueError("size must be positive")
        if TRACE.active:
            TRACE.emit("dma_read", bdf=bdf, addr=addr, size=size)
        if BATCH_ENABLED:
            data = self.mem.ram.read_bulk(
                self.backend.translate_sg(bdf, addr, size, DmaDirection.TO_DEVICE)
            )
        else:
            out = bytearray()
            for phys, length in self.backend.translate_range(
                bdf, addr, size, DmaDirection.TO_DEVICE
            ):
                out += self.mem.ram.read(phys, length)
            data = bytes(out)
        self.stats.reads += 1
        self.stats.bytes_read += size
        return data

    def dma_write(self, bdf: int, addr: int, data: bytes) -> None:
        """Device writes ``data`` to device-address ``addr`` (Rx)."""
        if not data:
            raise ValueError("data must be non-empty")
        if TRACE.active:
            TRACE.emit("dma_write", bdf=bdf, addr=addr, size=len(data))
        if BATCH_ENABLED:
            # Translate the whole access first (faults before any byte
            # lands, as the scalar path's eager translate_range does),
            # then copy every extent in one bulk call.
            self.mem.ram.write_bulk(
                self.backend.translate_sg(
                    bdf, addr, len(data), DmaDirection.FROM_DEVICE
                ),
                data,
            )
        else:
            pos = 0
            for phys, length in self.backend.translate_range(
                bdf, addr, len(data), DmaDirection.FROM_DEVICE
            ):
                self.mem.ram.write(phys, data[pos : pos + length])
                pos += length
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    # -- scatter-gather bulk calls (one call per descriptor) ------------

    def dma_read_sg(self, bdf: int, segments: List[Tuple[int, int]]) -> bytes:
        """Device gathers ``[(addr, size), ...]`` segments into one buffer.

        Equivalent to concatenating :meth:`dma_read` per segment — same
        per-segment stats, same fault points (segment ``i`` translates
        fully before segment ``i+1`` is touched) — in one call.
        """
        if not BATCH_ENABLED:
            return b"".join(self.dma_read(bdf, addr, size) for addr, size in segments)
        backend = self.backend
        ram = self.mem.ram
        stats = self.stats
        parts: List[bytes] = []
        for addr, size in segments:
            if size <= 0:
                raise ValueError("size must be positive")
            if TRACE.active:
                TRACE.emit("dma_read", bdf=bdf, addr=addr, size=size)
            parts.append(
                ram.read_bulk(
                    backend.translate_sg(bdf, addr, size, DmaDirection.TO_DEVICE)
                )
            )
            stats.reads += 1
            stats.bytes_read += size
        return b"".join(parts)

    def dma_write_sg(self, bdf: int, parts: List[Tuple[int, bytes]]) -> None:
        """Device scatters ``[(addr, data), ...]`` chunks in order.

        Equivalent to :meth:`dma_write` per chunk: each segment is
        translated in full before its bytes land, so a fault leaves
        exactly the earlier segments written — the scalar behaviour.
        """
        if not BATCH_ENABLED:
            for addr, chunk in parts:
                self.dma_write(bdf, addr, chunk)
            return
        backend = self.backend
        ram = self.mem.ram
        stats = self.stats
        for addr, chunk in parts:
            if not chunk:
                raise ValueError("data must be non-empty")
            if TRACE.active:
                TRACE.emit("dma_write", bdf=bdf, addr=addr, size=len(chunk))
            ram.write_bulk(
                backend.translate_sg(bdf, addr, len(chunk), DmaDirection.FROM_DEVICE),
                chunk,
            )
            stats.writes += 1
            stats.bytes_written += len(chunk)


class DmaEngine:
    """A device's bulk DMA front-end: one call per descriptor.

    Thin per-device binding of a :class:`DmaBus` — device models hold
    one and issue whole-descriptor gathers/scatters instead of looping
    over segments (and, inside the bus, pages) themselves.
    """

    __slots__ = ("bus", "bdf")

    def __init__(self, bus: DmaBus, bdf: int) -> None:
        self.bus = bus
        self.bdf = bdf

    def read(self, addr: int, size: int) -> bytes:
        """Bulk-read one contiguous device-address range."""
        return self.bus.dma_read(self.bdf, addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Bulk-write one contiguous device-address range."""
        self.bus.dma_write(self.bdf, addr, data)

    def read_gather(self, segments: List[Tuple[int, int]]) -> bytes:
        """Gather a descriptor's ``[(addr, size), ...]`` segment list."""
        return self.bus.dma_read_sg(self.bdf, segments)

    def write_scatter(self, parts: List[Tuple[int, bytes]]) -> None:
        """Scatter ``[(addr, data), ...]`` chunks across a descriptor."""
        self.bus.dma_write_sg(self.bdf, parts)
