"""An AHCI/SATA controller model — where rIOMMU is *inapplicable*.

The paper (§4, Applicability and Limitations) explains why rIOMMU does
not target SATA: AHCI exposes a single queue of 32 command slots that
the drive may complete in *arbitrary order*, violating the strict ring
order rIOMMU relies on; and SATA drives are too slow for IOMMU overhead
to matter anyway (their Bonnie++ runs were indistinguishable between
strict IOMMU and no IOMMU).  This model supplies both properties:
out-of-order completion, and a per-command device latency that dwarfs
the mapping cost, so experiment E9 can reproduce the claim.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.devices.dma import DmaBus, DmaEngine

AHCI_COMMAND_SLOTS = 32
SECTOR_BYTES = 512

#: A 7200rpm-class SATA device: ~100 us per sequential 4 KB op at the
#: device, i.e. hundreds of thousands of CPU cycles — versus the ~7,600
#: cycles of a strict map+unmap pair.
DEFAULT_DEVICE_LATENCY_US = 100.0


class AhciOp(enum.Enum):
    """Read or write."""

    READ = "read"
    WRITE = "write"


@dataclass
class AhciCommand:
    """One command-slot entry."""

    op: AhciOp
    lba: int
    sectors: int
    #: device-visible address of the data buffer
    data_addr: int

    @property
    def byte_count(self) -> int:
        """Bytes this command transfers."""
        return self.sectors * SECTOR_BYTES


@dataclass
class AhciCompletion:
    """Completion record for one slot."""

    slot: int
    ok: bool
    device_latency_us: float


class AhciController:
    """Single-queue, 32-slot controller with out-of-order completion."""

    def __init__(
        self,
        bus: DmaBus,
        bdf: int,
        capacity_sectors: int = 1 << 24,
        device_latency_us: float = DEFAULT_DEVICE_LATENCY_US,
        seed: int = 0,
    ) -> None:
        self.bus = bus
        self.bdf = bdf
        self.engine = DmaEngine(bus, bdf)
        self.capacity_sectors = capacity_sectors
        self.device_latency_us = device_latency_us
        self._disk: Dict[int, bytes] = {}
        self._slots: Dict[int, AhciCommand] = {}
        self._rng = random.Random(seed)
        self.on_completion: Optional[Callable[[AhciCompletion], None]] = None
        self.commands_processed = 0

    # -- host side -----------------------------------------------------------

    def issue(self, command: AhciCommand) -> int:
        """Place a command in a free slot; returns the slot number."""
        for slot in range(AHCI_COMMAND_SLOTS):
            if slot not in self._slots:
                self._slots[slot] = command
                return slot
        raise RuntimeError("all 32 AHCI command slots are busy")

    @property
    def busy_slots(self) -> int:
        """Number of occupied command slots."""
        return len(self._slots)

    # -- device side ------------------------------------------------------------

    def process(self, shuffle: bool = True) -> List[AhciCompletion]:
        """Drive executes all issued commands — in arbitrary order.

        ``shuffle=True`` randomises the completion order (NCQ-style),
        which is exactly the behaviour that breaks rIOMMU's assumption.
        """
        slots = list(self._slots.keys())
        if shuffle:
            self._rng.shuffle(slots)
        completions: List[AhciCompletion] = []
        for slot in slots:
            command = self._slots.pop(slot)
            ok = self._execute(command)
            completion = AhciCompletion(
                slot=slot, ok=ok, device_latency_us=self.device_latency_us
            )
            completions.append(completion)
            self.commands_processed += 1
            if self.on_completion is not None:
                self.on_completion(completion)
        return completions

    def _execute(self, command: AhciCommand) -> bool:
        if command.sectors <= 0:
            return False
        if command.lba < 0 or command.lba + command.sectors > self.capacity_sectors:
            return False
        if command.op is AhciOp.WRITE:
            # One bulk gather for the whole transfer.
            data = self.engine.read(command.data_addr, command.byte_count)
            for i in range(command.sectors):
                self._disk[command.lba + i] = bytes(
                    data[i * SECTOR_BYTES : (i + 1) * SECTOR_BYTES]
                )
            return True
        out = bytearray()
        for i in range(command.sectors):
            out += self._disk.get(command.lba + i, bytes(SECTOR_BYTES))
        self.engine.write(command.data_addr, bytes(out))
        return True

    # -- introspection ------------------------------------------------------------

    def sector(self, lba: int) -> bytes:
        """Direct disk inspection (test helper)."""
        return self._disk.get(lba, bytes(SECTOR_BYTES))
