"""An NVMe controller with memory-resident queues (paper §4, Applicability).

NVMe is the paper's second target class: PCIe SSDs whose spec mandates
ring-shaped submission/completion queues ("up to 64K queues of up to
64K commands"), consumed strictly in order — exactly the discipline the
rIOMMU exploits.

Fidelity notes: submission and completion queues live in *host memory*;
the host writes 64-byte SQEs at the SQ tail and rings a doorbell, and
the controller DMA-reads the SQEs and DMA-writes 16-byte CQEs — every
one of those accesses goes through the DMA bus, i.e. through whichever
(r)IOMMU backend is configured, just like the data transfers
themselves.  Doorbells are exposed both as methods and as an MMIO
register block (:class:`NvmeMmio`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.devices.dma import DmaBus, DmaEngine

NVME_BLOCK_BYTES = 4096
SQE_BYTES = 64
CQE_BYTES = 16
#: NVMe spec limits: 64K queues x 64K commands
MAX_QUEUE_ENTRIES = 1 << 16
MAX_QUEUES = 1 << 16


class NvmeOpcode(enum.Enum):
    """The two I/O commands the model implements."""

    READ = 0x02
    WRITE = 0x01


class NvmeStatus(enum.Enum):
    """Completion status codes."""

    SUCCESS = 0x0
    INVALID_FIELD = 0x2
    INVALID_OPCODE = 0x1
    LBA_OUT_OF_RANGE = 0x80


@dataclass
class NvmeCommand:
    """One submission-queue entry (simplified SQE)."""

    opcode: NvmeOpcode
    command_id: int
    lba: int
    blocks: int
    #: device-visible address of the data buffer (IOVA/phys/rIOVA)
    data_addr: int

    @property
    def byte_count(self) -> int:
        """Bytes this command transfers."""
        return self.blocks * NVME_BLOCK_BYTES

    def encode(self) -> bytes:
        """Serialize to the 64-byte in-memory SQE format."""
        return (
            self.opcode.value.to_bytes(4, "little")
            + (self.command_id & 0xFFFFFFFF).to_bytes(4, "little")
            + self.lba.to_bytes(8, "little")
            + self.blocks.to_bytes(4, "little")
            + bytes(4)
            + self.data_addr.to_bytes(8, "little")
            + bytes(SQE_BYTES - 32)
        )

    @classmethod
    def decode(cls, raw: bytes) -> "NvmeCommand":
        """Deserialize from the 64-byte in-memory SQE format."""
        if len(raw) != SQE_BYTES:
            raise ValueError(f"SQE must be {SQE_BYTES} bytes")
        return cls(
            opcode=NvmeOpcode(int.from_bytes(raw[0:4], "little")),
            command_id=int.from_bytes(raw[4:8], "little"),
            lba=int.from_bytes(raw[8:16], "little"),
            blocks=int.from_bytes(raw[16:20], "little"),
            data_addr=int.from_bytes(raw[24:32], "little"),
        )


@dataclass
class NvmeCompletion:
    """One completion-queue entry (simplified CQE)."""

    command_id: int
    status: NvmeStatus
    sq_head: int

    def encode(self) -> bytes:
        """Serialize to the 16-byte in-memory CQE format."""
        return (
            (self.command_id & 0xFFFF).to_bytes(2, "little")
            + self.status.value.to_bytes(2, "little")
            + (self.sq_head & 0xFFFF).to_bytes(2, "little")
            + bytes(CQE_BYTES - 6)
        )

    @classmethod
    def decode(cls, raw: bytes) -> "NvmeCompletion":
        """Deserialize from the 16-byte in-memory CQE format."""
        if len(raw) != CQE_BYTES:
            raise ValueError(f"CQE must be {CQE_BYTES} bytes")
        return cls(
            command_id=int.from_bytes(raw[0:2], "little"),
            status=NvmeStatus(int.from_bytes(raw[2:4], "little")),
            sq_head=int.from_bytes(raw[4:6], "little"),
        )


@dataclass
class NvmeQueuePair:
    """A submission queue and its completion queue (device-side view).

    ``sq_addr`` / ``cq_addr`` are *device-visible* base addresses of the
    host-memory rings.  ``completions`` mirrors the CQEs the controller
    wrote, for convenient host-side reaping in tests.
    """

    qid: int
    entries: int
    sq_addr: int
    cq_addr: int
    sq_head: int = 0
    sq_tail: int = 0  # last doorbell value the host wrote
    cq_tail: int = 0
    completions: List[NvmeCompletion] = field(default_factory=list)

    @property
    def pending(self) -> int:
        """Commands the host posted that the device has not consumed."""
        return (self.sq_tail - self.sq_head) % self.entries


CompletionHandler = Callable[[int, "NvmeCompletion"], None]


class NvmeController:
    """Device-side NVMe logic over an in-memory flash store."""

    def __init__(
        self,
        bus: DmaBus,
        bdf: int,
        capacity_blocks: int = 1 << 20,
    ) -> None:
        if capacity_blocks <= 0:
            raise ValueError("capacity must be positive")
        self.bus = bus
        self.bdf = bdf
        self.engine = DmaEngine(bus, bdf)
        self.capacity_blocks = capacity_blocks
        self._flash: Dict[int, bytes] = {}
        self._queues: Dict[int, NvmeQueuePair] = {}
        self.on_completion: Optional[CompletionHandler] = None
        self.commands_processed = 0

    # -- queue management --------------------------------------------------

    def create_queue_pair(
        self,
        entries: int,
        sq_addr: Optional[int] = None,
        cq_addr: Optional[int] = None,
    ) -> int:
        """Register an SQ/CQ pair; returns its queue ID.

        Proper use passes device-visible ``sq_addr``/``cq_addr`` of
        host rings the OS already mapped (see
        :class:`~repro.kernel.nvme_driver.NvmeDriver`).  As a test
        convenience, omitting them allocates host memory directly and
        uses physical addresses — valid only on an identity bus.
        """
        if not 1 <= entries <= MAX_QUEUE_ENTRIES:
            raise ValueError(f"entries must be in [1, {MAX_QUEUE_ENTRIES}]")
        if len(self._queues) >= MAX_QUEUES:
            raise RuntimeError("controller queue limit reached")
        if sq_addr is None:
            sq_addr = self.bus.mem.alloc_dma_buffer(entries * SQE_BYTES)
        if cq_addr is None:
            cq_addr = self.bus.mem.alloc_dma_buffer(entries * CQE_BYTES)
        qid = len(self._queues) + 1  # qid 0 is the admin queue in real NVMe
        self._queues[qid] = NvmeQueuePair(
            qid=qid, entries=entries, sq_addr=sq_addr, cq_addr=cq_addr
        )
        return qid

    def queue(self, qid: int) -> NvmeQueuePair:
        """Look up a queue pair."""
        try:
            return self._queues[qid]
        except KeyError:
            raise KeyError(f"no queue with ID {qid}")

    # -- host-side convenience (what NvmeDriver does properly) -----------------

    def submit(self, qid: int, command: NvmeCommand) -> None:
        """Host-side helper: write the SQE into the ring at the tail.

        This is the *host* acting (hence the direct memory write); the
        device only sees the SQE when :meth:`ring_doorbell` makes it
        DMA-read the ring.  Real drivers do this themselves — see
        ``repro.kernel.nvme_driver``.
        """
        qp = self.queue(qid)
        if qp.pending >= qp.entries - 1:
            raise RuntimeError(f"submission queue {qid} is full")
        # Valid only when sq_addr is a physical address (identity bus).
        self.bus.mem.ram.write(
            qp.sq_addr + qp.sq_tail * SQE_BYTES, command.encode()
        )
        qp.sq_tail = (qp.sq_tail + 1) % qp.entries

    # -- device side: doorbell + execution -----------------------------------------

    def ring_doorbell(self, qid: int, sq_tail: Optional[int] = None) -> int:
        """The SQ tail doorbell: consume SQEs head..tail strictly in order.

        ``sq_tail`` updates the device's tail shadow (an MMIO doorbell
        write); None keeps the current value (tests that used
        :meth:`submit` already advanced it).  Returns commands completed.
        """
        qp = self.queue(qid)
        if sq_tail is not None:
            if not 0 <= sq_tail < qp.entries:
                raise ValueError(f"doorbell tail {sq_tail} out of range")
            qp.sq_tail = sq_tail
        processed = 0
        while qp.pending > 0:
            raw = self.bus.dma_read(
                self.bdf, qp.sq_addr + qp.sq_head * SQE_BYTES, SQE_BYTES
            )
            command = NvmeCommand.decode(raw)
            qp.sq_head = (qp.sq_head + 1) % qp.entries
            status = self._execute(command)
            cqe = NvmeCompletion(
                command_id=command.command_id, status=status, sq_head=qp.sq_head
            )
            self.bus.dma_write(
                self.bdf, qp.cq_addr + qp.cq_tail * CQE_BYTES, cqe.encode()
            )
            qp.cq_tail = (qp.cq_tail + 1) % qp.entries
            qp.completions.append(cqe)
            self.commands_processed += 1
            processed += 1
            if self.on_completion is not None:
                self.on_completion(qid, cqe)
        return processed

    def _execute(self, command: NvmeCommand) -> NvmeStatus:
        if command.blocks <= 0:
            return NvmeStatus.INVALID_FIELD
        if command.lba < 0 or command.lba + command.blocks > self.capacity_blocks:
            return NvmeStatus.LBA_OUT_OF_RANGE
        if command.opcode is NvmeOpcode.WRITE:
            # One bulk gather for the whole transfer.
            data = self.engine.read(command.data_addr, command.byte_count)
            for i in range(command.blocks):
                block = data[i * NVME_BLOCK_BYTES : (i + 1) * NVME_BLOCK_BYTES]
                self._flash[command.lba + i] = bytes(block)
            return NvmeStatus.SUCCESS
        # READ
        out = bytearray()
        for i in range(command.blocks):
            out += self._flash.get(command.lba + i, bytes(NVME_BLOCK_BYTES))
        self.engine.write(command.data_addr, bytes(out))
        return NvmeStatus.SUCCESS

    # -- introspection ---------------------------------------------------------------

    def block(self, lba: int) -> bytes:
        """Direct flash inspection (test helper, not a device operation)."""
        return self._flash.get(lba, bytes(NVME_BLOCK_BYTES))


class NvmeMmio:
    """BAR0-style doorbell registers for an :class:`NvmeController`.

    Register layout (byte offsets):

    * 0x00  CAP  (read-only: max queue entries)
    * 0x14  CC   (controller configuration; bit 0 = enable)
    * 0x1000 + 8*qid  SQ tail doorbell for queue ``qid``
    """

    CAP_OFFSET = 0x00
    CC_OFFSET = 0x14
    DOORBELL_BASE = 0x1000
    DOORBELL_STRIDE = 8

    def __init__(self, controller: NvmeController) -> None:
        self.controller = controller
        self.enabled = False

    def read32(self, offset: int) -> int:
        """MMIO read."""
        if offset == self.CAP_OFFSET:
            return MAX_QUEUE_ENTRIES - 1
        if offset == self.CC_OFFSET:
            return 1 if self.enabled else 0
        raise ValueError(f"unmapped MMIO read at {offset:#x}")

    def write32(self, offset: int, value: int) -> None:
        """MMIO write; doorbell writes trigger queue processing."""
        if offset == self.CC_OFFSET:
            self.enabled = bool(value & 1)
            return
        if offset >= self.DOORBELL_BASE and (offset - self.DOORBELL_BASE) % self.DOORBELL_STRIDE == 0:
            if not self.enabled:
                raise RuntimeError("doorbell write while controller disabled")
            qid = (offset - self.DOORBELL_BASE) // self.DOORBELL_STRIDE
            self.controller.ring_doorbell(qid, sq_tail=value)
            return
        raise ValueError(f"unmapped MMIO write at {offset:#x}")
