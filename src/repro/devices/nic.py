"""Simulated ring-based NICs, modelled on the paper's two testbeds.

The Mellanox ConnectX3 profile (``mlx``) is a 40 Gbps NIC whose driver
posts *two* target buffers per packet — a small header buffer and a data
buffer — so every packet costs two map and two unmap calls.  The
Broadcom BCM57810 profile (``brcm``) is a 10 Gbps NIC with one buffer
per packet.  These two differences (line rate and buffers-per-packet)
drive all the qualitative differences between the top and bottom halves
of the paper's Figure 12.

The device only ever touches memory through its :class:`~repro.devices.dma.DmaBus`,
so every descriptor fetch, packet write and completion write-back is a
translated DMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import datapath as _datapath
from repro.devices.descriptor import _CODEC, DESCRIPTOR_BYTES, FLAG_DONE, FLAG_VALID
from repro.devices.dma import DmaBus, DmaEngine
from repro.devices.ring import Ring
from repro.faults import IoPageFault


@dataclass(frozen=True)
class NicProfile:
    """Static characteristics of a NIC model."""

    name: str
    line_rate_gbps: float
    #: target buffers (and thus IOVAs) the driver posts per packet
    buffers_per_packet: int
    #: bytes of each packet that land in the header buffer (0 = no split)
    header_split_bytes: int
    rx_entries: int
    tx_entries: int

    def __post_init__(self) -> None:
        if self.buffers_per_packet not in (1, 2):
            raise ValueError("buffers_per_packet must be 1 or 2")
        if self.buffers_per_packet == 2 and self.header_split_bytes <= 0:
            raise ValueError("two-buffer NICs need a positive header split")


#: Mellanox ConnectX3 40 Gbps — two buffers (header + data) per packet.
MLX_PROFILE = NicProfile(
    name="mlx",
    line_rate_gbps=40.0,
    buffers_per_packet=2,
    header_split_bytes=128,
    rx_entries=512,
    tx_entries=512,
)

#: Broadcom BCM57810 10 Gbps — one buffer per packet.
BRCM_PROFILE = NicProfile(
    name="brcm",
    line_rate_gbps=10.0,
    buffers_per_packet=1,
    header_split_bytes=0,
    rx_entries=512,
    tx_entries=512,
)


@dataclass
class NicStats:
    """Device-side counters."""

    frames_received: int = 0
    frames_transmitted: int = 0
    rx_drops: int = 0
    bytes_received: int = 0
    bytes_transmitted: int = 0
    #: DMAs aborted by the (r)IOMMU — a faulting device normally gets
    #: reinitialised by the OS (paper §4)
    io_page_faults: int = 0


CompletionCallback = Callable[[int, int], None]  # (descriptor index, byte count)


class SimulatedNic:
    """Device-side NIC logic: consumes rings, moves bytes, reports completions."""

    def __init__(self, bus: DmaBus, bdf: int, profile: NicProfile) -> None:
        self.bus = bus
        self.bdf = bdf
        self.engine = DmaEngine(bus, bdf)
        self.profile = profile
        self.stats = NicStats()
        self.rx_ring: Optional[Ring] = None
        self.tx_ring: Optional[Ring] = None
        self.on_rx_complete: Optional[CompletionCallback] = None
        self.on_tx_complete: Optional[CompletionCallback] = None
        #: if set, I/O page faults during DMAs are counted and reported
        #: here instead of propagating — the hook where the OS would
        #: reinitialise the device (paper §4: IOPFs are fatal to the
        #: transaction, and "OSes typically reinitialize the I/O device")
        self.on_io_page_fault: Optional[Callable[[IoPageFault], None]] = None
        #: frames the device "put on the wire"
        self.wire: List[bytes] = []

    # -- driver-facing configuration (MMIO register writes on real HW) -----

    def attach_rings(self, rx_ring: Ring, tx_ring: Ring) -> None:
        """Program the device with its Rx/Tx rings (bases already mapped)."""
        if rx_ring.device_base is None or tx_ring.device_base is None:
            raise ValueError("rings must have device-visible base addresses")
        self.rx_ring = rx_ring
        self.tx_ring = tx_ring

    # -- receive path ---------------------------------------------------------

    def deliver_frame(self, payload: bytes) -> bool:
        """A frame arrives from the wire; DMA it into the next Rx buffer.

        Returns False (and counts a drop) when no Rx descriptor is
        posted.  Exercises the full Figure 5 path: descriptor fetch
        through the IOMMU, then the data write through the IOMMU.
        """
        if not payload:
            raise ValueError("payload must be non-empty")
        ring = self._require(self.rx_ring, "rx")
        if ring.pending == 0:
            self.stats.rx_drops += 1
            return False
        if _datapath.COLUMNAR_ENABLED:
            return self._deliver_frame_columnar(ring, payload)
        index = ring.head
        try:
            descriptor = ring.device_fetch(self.bus, self.bdf, index)
        except IoPageFault as fault:
            self._fault(fault)
            return False
        if not descriptor.valid or not descriptor.segments:
            self.stats.rx_drops += 1
            return False
        if len(payload) > descriptor.total_length:
            self.stats.rx_drops += 1
            return False

        # One scatter call for the whole descriptor: each (addr, chunk)
        # pair is exactly what the per-segment dma_write loop would send.
        parts = []
        pos = 0
        for seg_addr, seg_len in descriptor.segments:
            if pos >= len(payload):
                break
            chunk = payload[pos : pos + seg_len]
            parts.append((seg_addr, chunk))
            pos += len(chunk)
        try:
            self.engine.write_scatter(parts)
        except IoPageFault as fault:
            self._fault(fault)
            return False

        descriptor.flags |= FLAG_DONE
        ring.device_writeback(self.bus, self.bdf, index, descriptor)
        ring.device_advance_head()
        self.stats.frames_received += 1
        self.stats.bytes_received += len(payload)
        if self.on_rx_complete is not None:
            self.on_rx_complete(index, len(payload))
        return True

    def _deliver_frame_columnar(self, ring: Ring, payload: bytes) -> bool:
        """:meth:`deliver_frame` without the ``Descriptor`` round-trip.

        The descriptor words are unpacked and re-packed with the same
        codec ``Descriptor.decode``/``encode`` use — including dropping
        zero-length segments on decode — so every DMA the bus sees is
        byte-identical to the scalar path's.
        """
        index = ring.head
        bus = self.bus
        bdf = self.bdf
        slot_addr = ring.slot_device_addr(index)
        try:
            raw = bus.dma_read(bdf, slot_addr, DESCRIPTOR_BYTES)
        except IoPageFault as fault:
            self._fault(fault)
            return False
        addr0, len0, flags, addr1, len1 = _CODEC.unpack(raw)
        if not flags & FLAG_VALID or not (len0 or len1):
            self.stats.rx_drops += 1
            return False
        nbytes = len(payload)
        if nbytes > len0 + len1:
            self.stats.rx_drops += 1
            return False

        parts = []
        pos = 0
        if len0:
            chunk = payload[:len0]
            parts.append((addr0, chunk))
            pos = len(chunk)
        if len1 and pos < nbytes:
            parts.append((addr1, payload[pos : pos + len1]))
        try:
            self.engine.write_scatter(parts)
        except IoPageFault as fault:
            self._fault(fault)
            return False

        # Write back from the *decoded* segment list, like the scalar
        # decode -> flags |= DONE -> encode round-trip does.
        done = flags | FLAG_DONE
        if len0:
            out = _CODEC.pack(addr0, len0, done, addr1 if len1 else 0, len1)
        else:
            out = _CODEC.pack(addr1, len1, done, 0, 0)
        bus.dma_write(bdf, slot_addr, out)
        ring.device_advance_head()
        stats = self.stats
        stats.frames_received += 1
        stats.bytes_received += nbytes
        if self.on_rx_complete is not None:
            self.on_rx_complete(index, nbytes)
        return True

    # -- transmit path ------------------------------------------------------------

    def process_tx(self, max_frames: Optional[int] = None) -> int:
        """Consume posted Tx descriptors: DMA-read the buffers and "send".

        Returns the number of frames transmitted this call.
        """
        ring = self._require(self.tx_ring, "tx")
        if _datapath.COLUMNAR_ENABLED:
            return self._process_tx_columnar(ring, max_frames)
        sent = 0
        while ring.pending > 0 and (max_frames is None or sent < max_frames):
            index = ring.head
            descriptor = ring.device_fetch(self.bus, self.bdf, index)
            if not descriptor.valid:
                break
            try:
                # One gather call covering the whole descriptor.
                frame = self.engine.read_gather(descriptor.segments)
            except IoPageFault as fault:
                self._fault(fault)
                break
            self.wire.append(frame)
            descriptor.flags |= FLAG_DONE
            ring.device_writeback(self.bus, self.bdf, index, descriptor)
            ring.device_advance_head()
            self.stats.frames_transmitted += 1
            self.stats.bytes_transmitted += len(frame)
            if self.on_tx_complete is not None:
                self.on_tx_complete(index, len(frame))
            sent += 1
        return sent

    def _process_tx_columnar(self, ring: Ring, max_frames: Optional[int]) -> int:
        """:meth:`process_tx` with raw descriptor codecs (see
        :meth:`_deliver_frame_columnar` for the equivalence argument)."""
        sent = 0
        bus = self.bus
        bdf = self.bdf
        engine = self.engine
        stats = self.stats
        wire = self.wire
        while ring.pending > 0 and (max_frames is None or sent < max_frames):
            index = ring.head
            slot_addr = ring.slot_device_addr(index)
            addr0, len0, flags, addr1, len1 = _CODEC.unpack(
                bus.dma_read(bdf, slot_addr, DESCRIPTOR_BYTES)
            )
            if not flags & FLAG_VALID:
                break
            segments = []
            if len0:
                segments.append((addr0, len0))
            if len1:
                segments.append((addr1, len1))
            try:
                frame = engine.read_gather(segments)
            except IoPageFault as fault:
                self._fault(fault)
                break
            wire.append(frame)
            done = flags | FLAG_DONE
            if len0:
                out = _CODEC.pack(addr0, len0, done, addr1 if len1 else 0, len1)
            else:
                out = _CODEC.pack(addr1 if len1 else 0, len1, done, 0, 0)
            bus.dma_write(bdf, slot_addr, out)
            ring.device_advance_head()
            stats.frames_transmitted += 1
            stats.bytes_transmitted += len(frame)
            if self.on_tx_complete is not None:
                self.on_tx_complete(index, len(frame))
            sent += 1
        return sent

    def fault_count(self) -> int:
        """IOPFs observed so far."""
        return self.stats.io_page_faults

    def _fault(self, fault: IoPageFault) -> None:
        """Count the IOPF; report it if a handler is set, else propagate."""
        self.stats.io_page_faults += 1
        if self.on_io_page_fault is None:
            raise fault
        self.on_io_page_fault(fault)

    @staticmethod
    def _require(ring: Optional[Ring], which: str) -> Ring:
        if ring is None:
            raise RuntimeError(f"NIC has no {which} ring attached")
        return ring


class MultiQueueNic:
    """A NIC with multiple Rx/Tx ring pairs (paper §2.3).

    Real NICs scale by letting different cores service different ring
    pairs; RSS hashes each flow to a queue.  Each queue is a full
    :class:`SimulatedNic` engine sharing the device's bus and requester
    ID, so under the rIOMMU every queue gets its own pair of rRINGs and
    its own single rIOTLB entry.
    """

    def __init__(
        self, bus: DmaBus, bdf: int, profile: NicProfile, num_queues: int
    ) -> None:
        if num_queues <= 0:
            raise ValueError("need at least one queue")
        self.bus = bus
        self.bdf = bdf
        self.profile = profile
        self.queues: List[SimulatedNic] = [
            SimulatedNic(bus, bdf, profile) for _ in range(num_queues)
        ]

    @property
    def num_queues(self) -> int:
        """Number of Rx/Tx ring pairs."""
        return len(self.queues)

    def queue(self, index: int) -> SimulatedNic:
        """One queue's engine."""
        return self.queues[index]

    def rss_queue(self, flow_id: int) -> int:
        """Receive-side-scaling hash: flow -> queue index."""
        return (flow_id * 0x9E3779B1 & 0xFFFFFFFF) % len(self.queues)

    # -- aggregates -------------------------------------------------------

    @property
    def frames_received(self) -> int:
        """Frames received across all queues."""
        return sum(q.stats.frames_received for q in self.queues)

    @property
    def frames_transmitted(self) -> int:
        """Frames transmitted across all queues."""
        return sum(q.stats.frames_transmitted for q in self.queues)

    @property
    def wire(self) -> List[bytes]:
        """Everything put on the wire, in per-queue order."""
        out: List[bytes] = []
        for q in self.queues:
            out.extend(q.wire)
        return out
