"""DMA direction — shared by page tables, rIOMMU rPTEs and the DMA API."""

from __future__ import annotations

import enum


class DmaDirection(enum.IntFlag):
    """Direction of a DMA relative to main memory.

    Matches the two-bit ``dir`` field of the paper's rPTE (Figure 9c):
    a DMA can move data *from* memory (device reads it — transmit),
    *to* memory (device writes it — receive), or both.
    """

    #: device reads main memory (transmit path / Tx)
    TO_DEVICE = 1
    #: device writes main memory (receive path / Rx)
    FROM_DEVICE = 2
    #: both directions permitted
    BIDIRECTIONAL = 3

    @property
    def device_reads(self) -> bool:
        """True if the device may read memory under this direction."""
        return bool(self & DmaDirection.TO_DEVICE)

    @property
    def device_writes(self) -> bool:
        """True if the device may write memory under this direction."""
        return bool(self & DmaDirection.FROM_DEVICE)

    def permits(self, access: "DmaDirection") -> bool:
        """True if an access of direction ``access`` is allowed by ``self``."""
        return bool(self & access) and (access & ~self) == 0
