"""DMA primitives shared across layers: direction and the map protocol.

Besides :class:`DmaDirection`, this module defines the one request /
result shape every mapping layer speaks —
:class:`MapRequest`/:class:`MapResult` and
:class:`UnmapRequest`/:class:`UnmapResult` — consumed by
``map_request``/``unmap_request`` on the kernel DMA API
(:mod:`repro.kernel.dma_api`), the baseline IOMMU driver
(:mod:`repro.iommu.driver`) and the rIOMMU driver
(:mod:`repro.core.driver`).  The older positional ``map``/``unmap``
signatures survive as ``DeprecationWarning`` shims around these.
"""

from __future__ import annotations

import enum
from operator import itemgetter
from typing import Optional


class DmaDirection(enum.IntFlag):
    """Direction of a DMA relative to main memory.

    Matches the two-bit ``dir`` field of the paper's rPTE (Figure 9c):
    a DMA can move data *from* memory (device reads it — transmit),
    *to* memory (device writes it — receive), or both.
    """

    #: device reads main memory (transmit path / Tx)
    TO_DEVICE = 1
    #: device writes main memory (receive path / Rx)
    FROM_DEVICE = 2
    #: both directions permitted
    BIDIRECTIONAL = 3

    @property
    def device_reads(self) -> bool:
        """True if the device may read memory under this direction."""
        return bool(self & DmaDirection.TO_DEVICE)

    @property
    def device_writes(self) -> bool:
        """True if the device may write memory under this direction."""
        return bool(self & DmaDirection.FROM_DEVICE)

    def permits(self, access: "DmaDirection") -> bool:
        """True if an access of direction ``access`` is allowed by ``self``."""
        return bool(self & access) and (access & ~self) == 0


class _Record(tuple):
    """Frozen keyword-only record, tuple-backed for cheap construction.

    These records are built once per map/unmap on the simulator's
    hottest path; a frozen ``@dataclass`` pays ~1.4 µs per instance for
    its ``object.__setattr__`` field stores, which is measurable
    against a ~70 ms benchmark cell.  Subclassing ``tuple`` keeps the
    same contract — keyword-only construction (``TypeError`` on
    positional args), immutability (``AttributeError`` on assignment),
    value equality and hashing — at a fraction of the cost.
    """

    __slots__ = ()
    _fields: tuple = ()

    def __getnewargs_ex__(self):
        # The subclasses' __new__ methods are keyword-only, so pickle
        # must rebuild with kwargs (simulation checkpoints serialise
        # any in-flight request/result records).
        return (), dict(zip(self._fields, self))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in zip(self._fields, self)
        )
        return f"{type(self).__name__}({inner})"


class MapRequest(_Record):
    """One buffer to map, in the vocabulary every layer shares.

    ``ring`` is the rIOMMU ring ID the mapping belongs to; layers
    without per-ring tables (identity, baseline IOMMU) ignore it.
    """

    __slots__ = ()
    _fields = ("phys_addr", "size", "direction", "ring")

    def __new__(
        cls,
        *,
        phys_addr: int,
        size: int,
        direction: DmaDirection,
        ring: Optional[int] = None,
    ) -> "MapRequest":
        return tuple.__new__(cls, (phys_addr, size, direction, ring))

    phys_addr: int = property(itemgetter(0))
    size: int = property(itemgetter(1))
    direction: DmaDirection = property(itemgetter(2))
    ring: Optional[int] = property(itemgetter(3))


class MapResult(_Record):
    """The outcome of a map: the device-visible address of the buffer.

    ``device_addr`` is whatever the protection mode makes the device
    use — the physical address (identity), an IOVA (baseline IOMMU),
    or a packed rIOVA (rIOMMU).  ``ring`` echoes the request's ring.
    """

    __slots__ = ()
    _fields = ("device_addr", "ring")

    def __new__(
        cls, *, device_addr: int, ring: Optional[int] = None
    ) -> "MapResult":
        return tuple.__new__(cls, (device_addr, ring))

    device_addr: int = property(itemgetter(0))
    ring: Optional[int] = property(itemgetter(1))


class UnmapRequest(_Record):
    """One device address to unmap.

    ``end_of_burst`` marks the last unmap of a completion burst — the
    only point where the rIOMMU needs an rIOTLB invalidation; other
    backends ignore it.
    """

    __slots__ = ()
    _fields = ("device_addr", "end_of_burst")

    def __new__(
        cls, *, device_addr: int, end_of_burst: bool = False
    ) -> "UnmapRequest":
        return tuple.__new__(cls, (device_addr, end_of_burst))

    device_addr: int = property(itemgetter(0))
    end_of_burst: bool = property(itemgetter(1))


class UnmapResult(_Record):
    """The outcome of an unmap: the buffer's physical address."""

    __slots__ = ()
    _fields = ("phys_addr",)

    def __new__(cls, *, phys_addr: int) -> "UnmapResult":
        return tuple.__new__(cls, (phys_addr,))

    phys_addr: int = property(itemgetter(0))


# -- internal fast-path constructors -----------------------------------
#
# A Python-level keyword-only call costs ~3x the underlying C tuple
# construction — measurable at one request plus one result object per
# map/unmap on the per-packet hot path.  The simulator's own layers
# build records through these positional helpers; external callers use
# the keyword-only classes above (same objects, same immutability).

_tuple_new = tuple.__new__


def _map_request(
    phys_addr: int, size: int, direction: DmaDirection, ring: Optional[int] = None
) -> MapRequest:
    return _tuple_new(MapRequest, (phys_addr, size, direction, ring))


def _map_result(device_addr: int, ring: Optional[int] = None) -> MapResult:
    return _tuple_new(MapResult, (device_addr, ring))


def _unmap_request(device_addr: int, end_of_burst: bool = False) -> UnmapRequest:
    return _tuple_new(UnmapRequest, (device_addr, end_of_burst))


def _unmap_result(phys_addr: int) -> UnmapResult:
    return _tuple_new(UnmapResult, (phys_addr,))
