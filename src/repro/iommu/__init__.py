"""Baseline Intel-style IOMMU: radix page tables, IOTLB, Linux driver."""

from repro.iommu.context import ContextTables, make_bdf, split_bdf
from repro.iommu.driver import DMA_32BIT_PFN, BaselineIommuDriver, LiveMapping
from repro.iommu.hardware import Iommu, TranslationStats
from repro.iommu.invalidation import (
    DEFAULT_FLUSH_THRESHOLD,
    DeferredInvalidation,
    InvalidationStats,
    StrictInvalidation,
)
from repro.iommu.iotlb import DEFAULT_IOTLB_CAPACITY, Iotlb, IotlbEntry, IotlbStats
from repro.iommu.qi import QiOpcode, QiStats, QueuedInvalidation, QueueFullError
from repro.iommu.page_table import (
    PTE_PRESENT,
    PTE_READ,
    PTE_WRITE,
    PageTableOpStats,
    RadixPageTable,
    WalkResult,
    direction_allowed,
    perms_from_direction,
)

__all__ = [
    "DEFAULT_FLUSH_THRESHOLD",
    "DEFAULT_IOTLB_CAPACITY",
    "DMA_32BIT_PFN",
    "BaselineIommuDriver",
    "ContextTables",
    "DeferredInvalidation",
    "Iommu",
    "Iotlb",
    "IotlbEntry",
    "IotlbStats",
    "InvalidationStats",
    "LiveMapping",
    "PTE_PRESENT",
    "PTE_READ",
    "PTE_WRITE",
    "PageTableOpStats",
    "QiOpcode",
    "QiStats",
    "QueueFullError",
    "QueuedInvalidation",
    "RadixPageTable",
    "StrictInvalidation",
    "TranslationStats",
    "WalkResult",
    "direction_allowed",
    "make_bdf",
    "perms_from_direction",
    "split_bdf",
]
