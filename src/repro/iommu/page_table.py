"""The baseline IOMMU's 4-level radix I/O page table (paper §2.2).

Tables are real 4 KB pages in the simulated physical memory; entries
are 64-bit words.  CPU-side updates go through the coherency domain
(the Linux driver must flush cachelines because the I/O page walk on
the paper's testbed is not coherent with the CPU caches), and
hardware-side walks read the same memory through the coherency domain,
so a missing flush is *detected*, not just undercharged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from operator import itemgetter
from typing import Dict, Tuple

from repro.dma import DmaDirection
from repro.faults import PermissionFault, TranslationFault
from repro.memory.address import (
    PAGE_SHIFT,
    PAGE_SIZE,
    RADIX_LEVEL_BITS,
    RADIX_LEVELS,
    page_base,
    page_offset,
    radix_indices,
)
from repro.memory.coherency import CoherencyDomain
from repro.memory.physical import MemorySystem

PTE_PRESENT = 1 << 0
PTE_READ = 1 << 1  # device may read memory through this mapping (Tx)
PTE_WRITE = 1 << 2  # device may write memory through this mapping (Rx)
PTE_FLAG_MASK = PTE_PRESENT | PTE_READ | PTE_WRITE
PTE_ADDR_MASK = ~(PAGE_SIZE - 1)


#: address bits above one leaf table's reach (4 KiB pages x 512 entries)
_LEAF_TABLE_SHIFT = PAGE_SHIFT + RADIX_LEVEL_BITS
_LEAF_INDEX_MASK = (1 << RADIX_LEVEL_BITS) - 1


def perms_from_direction(direction: DmaDirection) -> int:
    """Convert a DMA direction into PTE permission bits."""
    # Table lookup: the IntFlag property accessors build a new member
    # per call, and this runs on every mapped page.
    return _PERMS_BY_DIRECTION[direction.value]


# Enumerated explicitly: iterating an IntFlag yields only the single-bit
# members, which would miss the composite BIDIRECTIONAL.
_PERMS_BY_DIRECTION = {
    direction.value: (PTE_READ if direction.device_reads else 0)
    | (PTE_WRITE if direction.device_writes else 0)
    for direction in (
        DmaDirection.TO_DEVICE,
        DmaDirection.FROM_DEVICE,
        DmaDirection.BIDIRECTIONAL,
    )
}


def direction_allowed(perms: int, access: DmaDirection) -> bool:
    """True if PTE permission bits allow an access of the given direction."""
    # Raw-int form of access.device_reads/device_writes: this runs once
    # per translation, and IntFlag ``&`` builds a new member each call.
    bits = access.value
    if bits & 1 and not perms & PTE_READ:  # device reads (TO_DEVICE)
        return False
    if bits & 2 and not perms & PTE_WRITE:  # device writes (FROM_DEVICE)
        return False
    return True


@dataclass(slots=True)
class PageTableOpStats:
    """What one map/unmap page-table operation actually did."""

    entries_written: int = 0
    tables_allocated: int = 0
    levels_touched: int = 0


class WalkResult(tuple):
    """Outcome of a successful hardware table walk.

    Tuple-backed: one is built per IOTLB miss, and the C-level tuple
    constructor is several times cheaper than a dataclass ``__init__``.
    """

    __slots__ = ()

    def __new__(cls, frame_addr: int, perms: int, levels_read: int) -> "WalkResult":
        return tuple.__new__(cls, (frame_addr, perms, levels_read))

    def __getnewargs__(self):
        # Pickle support for the custom positional __new__ (simulation
        # checkpoints serialise cached walk results).
        return tuple(self)

    frame_addr: int = property(itemgetter(0))
    perms: int = property(itemgetter(1))
    levels_read: int = property(itemgetter(2))

    def __repr__(self) -> str:
        return (
            f"WalkResult(frame_addr={self[0]}, perms={self[1]}, "
            f"levels_read={self[2]})"
        )


#: process-wide domain-ID allocator (VT-d DIDs are 16-bit; we just count)
_domain_ids = itertools.count(1)


class RadixPageTable:
    """A per-*domain* 4-level radix tree of IOVA=>PA translations.

    In VT-d terms this is a protection domain: one or more devices may
    be attached to the same table, and cached translations are tagged
    with the table's ``domain_id``, so an unmap's invalidation covers
    every attached device at once.
    """

    def __init__(self, mem: MemorySystem, coherency: CoherencyDomain) -> None:
        self.mem = mem
        self.coherency = coherency
        self.root_addr = self._alloc_table()
        #: VT-d domain identifier tagging this table's IOTLB entries
        self.domain_id = next(_domain_ids)
        #: number of currently-present leaf mappings
        self.mapped_pages = 0
        #: resolved leaf-table addresses keyed by ``iova >> 21``.
        #: Intermediate tables are only reclaimed when the domain dies
        #: (see :meth:`unmap_page`), so a resolved leaf-table address
        #: stays valid for this object's whole lifetime; the cache skips
        #: re-reading three intermediate entries per map/unmap without
        #: changing any observable stat (those reads go through the OS
        #: view of memory, not the coherency domain).
        self._leaf_tables: Dict[int, int] = {}

    def _alloc_table(self) -> int:
        """Allocate and zero one table page; returns its physical address."""
        addr = self.mem.allocator.alloc_page()
        # Table pages are zero on allocation (PhysicalMemory reads as zero),
        # but the hardware must not see stale lines either: the driver
        # flushes the whole new table page.
        self.coherency.cpu_write(addr, PAGE_SIZE)
        self.coherency.cache_line_flush(addr, PAGE_SIZE)
        return addr

    # -- CPU (driver) side --------------------------------------------------

    def map_page(
        self, iova: int, phys_addr: int, direction: DmaDirection
    ) -> PageTableOpStats:
        """Install a translation from ``iova``'s page to ``phys_addr``'s frame.

        Walks (and creates, where missing) the intermediate tables, then
        writes the leaf PTE and synchronises memory so the hardware
        walker sees the update.
        """
        stats = PageTableOpStats()
        key = iova >> _LEAF_TABLE_SHIFT
        table_addr = self._leaf_tables.get(key)
        if table_addr is not None:
            # Cached leaf table: the intermediates exist (they are never
            # freed), so the walk below would read them back unchanged.
            stats.levels_touched = RADIX_LEVELS
        else:
            indices = radix_indices(iova)
            table_addr = self.root_addr
            for level in range(RADIX_LEVELS - 1):
                stats.levels_touched += 1
                entry_addr = table_addr + indices[level] * 8
                entry = self.mem.ram.read_u64(entry_addr)
                if not entry & PTE_PRESENT:
                    child = self._alloc_table()
                    stats.tables_allocated += 1
                    entry = child | PTE_PRESENT
                    self._write_entry(entry_addr, entry)
                    stats.entries_written += 1
                table_addr = entry & PTE_ADDR_MASK
            self._leaf_tables[key] = table_addr
            stats.levels_touched += 1

        leaf_addr = table_addr + ((iova >> PAGE_SHIFT) & _LEAF_INDEX_MASK) * 8
        existing = self.mem.ram.read_u64(leaf_addr)
        if existing & PTE_PRESENT:
            raise ValueError(f"IOVA page {iova:#x} is already mapped")
        pte = page_base(phys_addr) | perms_from_direction(direction) | PTE_PRESENT
        self._write_entry(leaf_addr, pte)
        stats.entries_written += 1
        self.mapped_pages += 1
        return stats

    def map_page_fast(
        self, iova: int, phys_addr: int, direction: DmaDirection
    ) -> Tuple[int, int]:
        """Counts-only :meth:`map_page` for the columnar datapath.

        Same memory writes, same coherency traffic, same errors — but
        when the leaf table is already resolved it skips the
        ``PageTableOpStats`` allocation and returns bare
        ``(entries_written, tables_allocated)`` counts.
        """
        table_addr = self._leaf_tables.get(iova >> _LEAF_TABLE_SHIFT)
        if table_addr is None:
            op = self.map_page(iova, phys_addr, direction)
            return op.entries_written, op.tables_allocated
        leaf_addr = table_addr + ((iova >> PAGE_SHIFT) & _LEAF_INDEX_MASK) * 8
        if self.mem.ram.read_u64(leaf_addr) & PTE_PRESENT:
            raise ValueError(f"IOVA page {iova:#x} is already mapped")
        pte = page_base(phys_addr) | _PERMS_BY_DIRECTION[direction.value] | PTE_PRESENT
        self._write_entry(leaf_addr, pte)
        self.mapped_pages += 1
        return 1, 0

    def unmap_page(self, iova: int) -> PageTableOpStats:
        """Clear the leaf PTE for ``iova``'s page.

        Intermediate tables are left in place, as the Linux driver does
        on the hot path (they are reclaimed only when the domain dies).
        """
        stats = PageTableOpStats()
        key = iova >> _LEAF_TABLE_SHIFT
        table_addr = self._leaf_tables.get(key)
        if table_addr is not None:
            stats.levels_touched = RADIX_LEVELS
        else:
            indices = radix_indices(iova)
            table_addr = self.root_addr
            for level in range(RADIX_LEVELS - 1):
                stats.levels_touched += 1
                entry_addr = table_addr + indices[level] * 8
                entry = self.mem.ram.read_u64(entry_addr)
                if not entry & PTE_PRESENT:
                    raise TranslationFault(
                        f"IOVA page {iova:#x} is not mapped", iova=iova
                    )
                table_addr = entry & PTE_ADDR_MASK
            self._leaf_tables[key] = table_addr
            stats.levels_touched += 1

        leaf_addr = table_addr + ((iova >> PAGE_SHIFT) & _LEAF_INDEX_MASK) * 8
        existing = self.mem.ram.read_u64(leaf_addr)
        if not existing & PTE_PRESENT:
            raise TranslationFault(f"IOVA page {iova:#x} is not mapped", iova=iova)
        self._write_entry(leaf_addr, 0)
        stats.entries_written += 1
        self.mapped_pages -= 1
        return stats

    def _write_entry(self, entry_addr: int, value: int) -> None:
        """Write one PTE and make it visible to the hardware walker."""
        self.mem.ram.write_u64(entry_addr, value)
        self.coherency.cpu_write(entry_addr, 8)
        self.coherency.sync_mem(entry_addr, 8)

    # -- hardware (walker) side ------------------------------------------------

    def walk(self, iova: int, access: DmaDirection) -> WalkResult:
        """Hardware page walk: resolve ``iova`` or raise an I/O page fault."""
        indices = radix_indices(iova)
        table_addr = self.root_addr
        hardware_read = self.coherency.hardware_read
        read_u64 = self.mem.ram.read_u64
        # Intermediate levels first, leaf handling after the loop: one
        # per-level branch fewer on every strict-mode IOTLB miss.
        for level in range(RADIX_LEVELS - 1):
            entry_addr = table_addr + indices[level] * 8
            hardware_read(entry_addr, 8)
            entry = read_u64(entry_addr)
            if not entry & PTE_PRESENT:
                raise TranslationFault(
                    f"walk failed at level {level + 1} for IOVA {iova:#x}", iova=iova
                )
            table_addr = entry & PTE_ADDR_MASK
        entry_addr = table_addr + indices[RADIX_LEVELS - 1] * 8
        hardware_read(entry_addr, 8)
        entry = read_u64(entry_addr)
        if not entry & PTE_PRESENT:
            raise TranslationFault(
                f"walk failed at level {RADIX_LEVELS} for IOVA {iova:#x}", iova=iova
            )
        perms = entry & PTE_FLAG_MASK
        if not direction_allowed(perms, access):
            raise PermissionFault(f"IOVA {iova:#x} does not permit {access!r}", iova=iova)
        return WalkResult(
            frame_addr=entry & PTE_ADDR_MASK, perms=perms, levels_read=RADIX_LEVELS
        )

    # -- introspection -----------------------------------------------------------

    def resolve(self, iova: int) -> int:
        """Driver-side lookup of the physical address mapped at ``iova``.

        Unlike :meth:`walk` this does not touch the coherency domain or
        enforce permissions — it reads the structures the way the OS
        does (through its own cache).
        """
        indices = radix_indices(iova)
        table_addr = self.root_addr
        for level in range(RADIX_LEVELS):
            entry = self.mem.ram.read_u64(table_addr + indices[level] * 8)
            if not entry & PTE_PRESENT:
                raise TranslationFault(f"IOVA page {iova:#x} is not mapped", iova=iova)
            if level == RADIX_LEVELS - 1:
                return (entry & PTE_ADDR_MASK) | page_offset(iova)
            table_addr = entry & PTE_ADDR_MASK
        raise AssertionError("unreachable")
