"""Root and context tables — how the IOMMU finds a device's page table.

The PCI request identifier (bus-device-function, Figure 2 of the paper)
indexes a two-level structure: the 8-bit bus number selects a context
table from the root table, and the 8-bit devfn selects the page-table
root from the context table.  Both tables are real pages in simulated
memory and are read by the hardware through the coherency domain.
"""

from __future__ import annotations

from typing import Dict

from repro.faults import ContextFault
from repro.memory.coherency import CoherencyDomain
from repro.memory.physical import MemorySystem

ENTRY_PRESENT = 1 << 0
ENTRY_ADDR_MASK = ~0xFFF


def make_bdf(bus: int, device: int, function: int) -> int:
    """Pack a bus-device-function triplet into a 16-bit requester ID."""
    if not 0 <= bus < 256:
        raise ValueError(f"bus must be in [0, 256), got {bus}")
    if not 0 <= device < 32:
        raise ValueError(f"device must be in [0, 32), got {device}")
    if not 0 <= function < 8:
        raise ValueError(f"function must be in [0, 8), got {function}")
    return (bus << 8) | (device << 3) | function


def split_bdf(bdf: int) -> tuple:
    """Unpack a requester ID into (bus, device, function)."""
    if not 0 <= bdf < 1 << 16:
        raise ValueError(f"bdf must be a 16-bit value, got {bdf}")
    return bdf >> 8, (bdf >> 3) & 0x1F, bdf & 0x7


class ContextTables:
    """Memory-backed root table plus per-bus context tables."""

    def __init__(self, mem: MemorySystem, coherency: CoherencyDomain) -> None:
        self.mem = mem
        self.coherency = coherency
        self.root_table_addr = self._alloc_table()
        self._context_tables: Dict[int, int] = {}  # bus -> table address
        # Successful lookups cached as bdf -> (root entry addr, context
        # entry addr, page-table root).  Entries are only ever written
        # through _write_entry, which drops the cache, so a cached result
        # always equals what re-reading the tables would produce; cached
        # hits still perform both hardware_read calls, keeping coherency
        # stats and staleness checking identical to the uncached path.
        self._lookup_cache: Dict[int, tuple] = {}

    def _alloc_table(self) -> int:
        addr = self.mem.allocator.alloc_page()
        self.coherency.cpu_write(addr, 4096)
        self.coherency.cache_line_flush(addr, 4096)
        return addr

    # -- OS side -----------------------------------------------------------

    def attach(self, bdf: int, page_table_root: int) -> None:
        """Point ``bdf``'s context entry at a page-table root address."""
        bus, device, function = split_bdf(bdf)
        ctx_addr = self._context_tables.get(bus)
        if ctx_addr is None:
            ctx_addr = self._alloc_table()
            self._context_tables[bus] = ctx_addr
            root_entry_addr = self.root_table_addr + bus * 8
            self._write_entry(root_entry_addr, ctx_addr | ENTRY_PRESENT)
        devfn = (device << 3) | function
        self._write_entry(ctx_addr + devfn * 8, page_table_root | ENTRY_PRESENT)

    def detach(self, bdf: int) -> None:
        """Clear ``bdf``'s context entry (device removal / domain teardown)."""
        bus, device, function = split_bdf(bdf)
        ctx_addr = self._context_tables.get(bus)
        if ctx_addr is None:
            raise ContextFault(f"no context table for bus {bus}", bdf=bdf)
        devfn = (device << 3) | function
        self._write_entry(ctx_addr + devfn * 8, 0)

    def _write_entry(self, entry_addr: int, value: int) -> None:
        self._lookup_cache.clear()
        self.mem.ram.write_u64(entry_addr, value)
        self.coherency.cpu_write(entry_addr, 8)
        self.coherency.sync_mem(entry_addr, 8)

    # -- hardware side ----------------------------------------------------------

    def lookup(self, bdf: int) -> int:
        """Hardware lookup: requester ID to page-table root address."""
        hardware_read = self.coherency.hardware_read
        cached = self._lookup_cache.get(bdf)
        if cached is not None:
            root_entry_addr, ctx_entry_addr, root = cached
            hardware_read(root_entry_addr, 8)
            hardware_read(ctx_entry_addr, 8)
            return root
        bus, device, function = split_bdf(bdf)
        root_entry_addr = self.root_table_addr + bus * 8
        hardware_read(root_entry_addr, 8)
        root_entry = self.mem.ram.read_u64(root_entry_addr)
        if not root_entry & ENTRY_PRESENT:
            raise ContextFault(f"no context table for bus {bus}", bdf=bdf)
        ctx_addr = root_entry & ENTRY_ADDR_MASK
        devfn = (device << 3) | function
        ctx_entry_addr = ctx_addr + devfn * 8
        hardware_read(ctx_entry_addr, 8)
        ctx_entry = self.mem.ram.read_u64(ctx_entry_addr)
        if not ctx_entry & ENTRY_PRESENT:
            raise ContextFault(f"no context entry for bdf {bdf:#06x}", bdf=bdf)
        root = ctx_entry & ENTRY_ADDR_MASK
        self._lookup_cache[bdf] = (root_entry_addr, ctx_entry_addr, root)
        return root
