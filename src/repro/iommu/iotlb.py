"""The IOTLB: a capacity-bounded translation cache with LRU replacement.

Entries persist until explicitly invalidated by the OS.  This is what
makes the deferred protection mode unsafe: after an unmap, the device
can still translate through the stale cached entry until the batched
flush — the "vulnerability window" the paper describes in §3.2.  Tests
exercise this window directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

#: Capacity used when none is given.  Intel does not document IOTLB
#: sizes; tens of entries per translation cache is the accepted
#: estimate, and the exact value only matters for miss-rate studies.
DEFAULT_IOTLB_CAPACITY = 64


@dataclass
class IotlbStats:
    """Hit/miss/invalidation counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    single_invalidations: int = 0
    global_invalidations: int = 0
    #: hits on entries whose page-table mapping was already destroyed
    stale_hits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.single_invalidations = 0
        self.global_invalidations = 0
        self.stale_hits = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 if no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass(slots=True)
class IotlbEntry:
    """One cached translation: (tag, vpn) -> frame address + permissions.

    ``tag`` is the translation's cache tag — the VT-d *domain* ID when
    inserted by the IOMMU datapath (devices sharing a domain share
    cached translations), or any caller-chosen source tag in
    stand-alone use.
    """

    tag: int
    vpn: int
    frame_addr: int
    perms: int
    #: set False by the page-table layer when the backing PTE is cleared;
    #: used only to *account* stale hits — a real IOTLB has no such bit.
    backing_valid: bool = True


class Iotlb:
    """Fully-associative LRU IOTLB keyed by (domain/source tag, virtual page)."""

    def __init__(self, capacity: int = DEFAULT_IOTLB_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = IotlbStats()
        self._entries: "OrderedDict[Tuple[int, int], IotlbEntry]" = OrderedDict()
        #: bumped on every event that can withdraw a cached translation
        #: (invalidations and backing-PTE teardown).  Translation memos
        #: above the IOTLB compare this to decide whether their cached
        #: results may still be served.
        self.generation = 0

    def peek(self, tag: int, vpn: int) -> Optional[IotlbEntry]:
        """Like :meth:`lookup` but with no stats or LRU side effects.

        Introspection helper for translation memos; never use it on the
        hardware datapath proper.
        """
        return self._entries.get((tag, vpn))

    def lookup(self, tag: int, vpn: int) -> Optional[IotlbEntry]:
        """Return the cached entry for (tag, vpn) or None on a miss."""
        key = (tag, vpn)
        entries = self._entries
        stats = self.stats
        entry = entries.get(key)
        if entry is None:
            stats.misses += 1
            return None
        entries.move_to_end(key)
        stats.hits += 1
        if not entry.backing_valid:
            stats.stale_hits += 1
        return entry

    def insert(self, entry: IotlbEntry) -> None:
        """Cache a translation, evicting the LRU entry if full."""
        key = (entry.tag, entry.vpn)
        entries = self._entries
        if key not in entries and len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[key] = entry
        entries.move_to_end(key)
        self.stats.insertions += 1

    def invalidate(self, tag: int, vpn: int) -> bool:
        """Invalidate one entry; True if it was present."""
        self.generation += 1
        self.stats.single_invalidations += 1
        return self._entries.pop((tag, vpn), None) is not None

    def invalidate_device(self, tag: int) -> int:
        """Invalidate all entries with one tag; returns the count removed."""
        self.generation += 1
        keys = [k for k in self._entries if k[0] == tag]
        for key in keys:
            del self._entries[key]
        self.stats.single_invalidations += 1
        return len(keys)

    def invalidate_all(self) -> int:
        """Flush the whole IOTLB; returns the count removed."""
        self.generation += 1
        removed = len(self._entries)
        self._entries.clear()
        self.stats.global_invalidations += 1
        return removed

    def mark_backing_invalid(self, tag: int, vpn: int) -> None:
        """Flag a cached entry as stale (its PTE was cleared without inval)."""
        self.generation += 1
        entry = self._entries.get((tag, vpn))
        if entry is not None:
            entry.backing_valid = False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries
