"""Queued invalidation (QI) — how the OS really invalidates the IOTLB.

Intel VT-d's invalidation interface is itself a ring: the driver writes
*invalidation descriptors* into a memory-resident circular queue, bumps
a tail register, and the IOMMU consumes them asynchronously.  To learn
that an invalidation completed, the driver queues a *wait descriptor*
whose completion makes the hardware write a status word to memory that
the driver spins on — that round trip is the ~2,100 cycles the paper's
Table 1 charges per strict-mode invalidation.

This module implements the mechanism for real: descriptors are bytes in
simulated DRAM, the hardware parses them, performs the IOTLB operation
and the status write, and the driver polls the status word.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.iommu.iotlb import Iotlb
from repro.memory.physical import MemorySystem
from repro.obs.tracer import TRACE

QI_DESCRIPTOR_BYTES = 16

#: 16-byte descriptor layout: u32 opcode, u64 operand0, u32 operand1.
_DESC = struct.Struct("<IQI")
assert _DESC.size == QI_DESCRIPTOR_BYTES


class QiOpcode(enum.Enum):
    """Invalidation-descriptor types (subset of the VT-d set)."""

    #: invalidate one (bdf, vpn) translation
    IOTLB_PAGE = 1
    #: invalidate everything cached for one device
    IOTLB_DEVICE = 2
    #: flush the entire IOTLB
    IOTLB_GLOBAL = 3
    #: write a status value to memory once prior descriptors retire
    WAIT = 4


#: raw opcode values for the drain loop's dispatch (comparing ints avoids
#: constructing an enum member per descriptor on the QI hot path)
_OP_PAGE = QiOpcode.IOTLB_PAGE.value
_OP_DEVICE = QiOpcode.IOTLB_DEVICE.value
_OP_GLOBAL = QiOpcode.IOTLB_GLOBAL.value
_OP_WAIT = QiOpcode.WAIT.value


@dataclass
class QiStats:
    """Queue activity counters."""

    submitted: int = 0
    processed: int = 0
    waits_completed: int = 0
    doorbells: int = 0


class QueueFullError(RuntimeError):
    """The invalidation queue has no free slot."""


class QueuedInvalidation:
    """A memory-resident invalidation queue shared by driver and IOMMU."""

    def __init__(self, mem: MemorySystem, iotlb: Iotlb, entries: int = 256) -> None:
        if entries < 2:
            raise ValueError("queue needs at least two entries")
        self.mem = mem
        self.iotlb = iotlb
        self.entries = entries
        self.base_addr = mem.allocator.alloc_buffer(entries * QI_DESCRIPTOR_BYTES)
        mem.allocator.pin(self.base_addr, entries * QI_DESCRIPTOR_BYTES)
        #: driver-owned: next slot to fill (the "tail register" value)
        self.tail = 0
        #: hardware-owned: next slot to consume
        self.head = 0
        self.stats = QiStats()

    # -- driver side -------------------------------------------------------

    def _slot_addr(self, index: int) -> int:
        return self.base_addr + index * QI_DESCRIPTOR_BYTES

    def _submit(self, opcode_value: int, operand0: int, operand1: int) -> None:
        # Takes the raw opcode value: the submit wrappers pass the module
        # constants, sparing an enum ``.value`` descriptor read per
        # descriptor on the strict-mode unmap path.
        next_tail = (self.tail + 1) % self.entries
        if next_tail == self.head:
            raise QueueFullError("invalidation queue is full")
        raw = _DESC.pack(opcode_value, operand0, operand1)
        self.mem.ram.write(self.base_addr + self.tail * QI_DESCRIPTOR_BYTES, raw)
        self.tail = next_tail
        self.stats.submitted += 1
        if TRACE.active:
            TRACE.emit(
                "qi_submit", opcode=opcode_value, operand0=operand0, operand1=operand1
            )

    def submit_page_invalidation(self, bdf: int, vpn: int) -> None:
        """Queue an invalidation of one cached translation."""
        self._submit(_OP_PAGE, vpn, bdf)

    def submit_device_invalidation(self, bdf: int) -> None:
        """Queue an invalidation of all of one device's translations."""
        self._submit(_OP_DEVICE, 0, bdf)

    def submit_global_invalidation(self) -> None:
        """Queue a full IOTLB flush."""
        self._submit(_OP_GLOBAL, 0, 0)

    def submit_wait(self, status_addr: int, status_value: int) -> None:
        """Queue a wait descriptor: hardware writes the value when done."""
        self._submit(_OP_WAIT, status_addr, status_value)

    def ring_doorbell(self) -> int:
        """Tell the hardware the tail moved; it drains the queue.

        (The simulation is synchronous, so the drain happens inline.)
        Returns the number of descriptors processed.
        """
        self.stats.doorbells += 1
        return self._drain()

    def invalidate_page_sync(self, bdf: int, vpn: int, status_addr: int) -> None:
        """The full strict-mode handshake: inv + wait + doorbell + poll."""
        ram = self.mem.ram
        ram.write_u64(status_addr, 0)
        self._submit(_OP_PAGE, vpn, bdf)
        self._submit(_OP_WAIT, status_addr, 1)
        self.stats.doorbells += 1
        self._drain()
        # Poll the status word the hardware wrote.
        if ram.read_u64(status_addr) != 1:
            raise RuntimeError("wait descriptor did not complete")

    def alloc_status_addr(self) -> int:
        """Allocate a pinned status dword for wait descriptors."""
        addr = self.mem.allocator.alloc_page()
        self.mem.allocator.pin(addr)
        return addr

    # -- hardware side ----------------------------------------------------------

    def _drain(self) -> int:
        processed = 0
        ram = self.mem.ram
        stats = self.stats
        base = self.base_addr
        while self.head != self.tail:
            raw = ram.read(base + self.head * QI_DESCRIPTOR_BYTES, QI_DESCRIPTOR_BYTES)
            opcode, operand0, operand1 = _DESC.unpack(raw)
            if opcode == _OP_PAGE:
                self.iotlb.invalidate(operand1, operand0)
                if TRACE.active:
                    TRACE.emit("invalidate", kind="page", tag=operand1, vpn=operand0)
            elif opcode == _OP_WAIT:
                ram.write_u64(operand0, operand1)
                stats.waits_completed += 1
                if TRACE.active:
                    TRACE.emit("qi_wait", status_addr=operand0, status_value=operand1)
            elif opcode == _OP_DEVICE:
                self.iotlb.invalidate_device(operand1)
                if TRACE.active:
                    TRACE.emit("invalidate", kind="device", tag=operand1)
            elif opcode == _OP_GLOBAL:
                self.iotlb.invalidate_all()
                if TRACE.active:
                    TRACE.emit("invalidate", kind="global")
            else:
                # Same rejection the enum constructor used to raise.
                raise ValueError(f"{opcode} is not a valid QiOpcode")
            self.head = (self.head + 1) % self.entries
            processed += 1
            stats.processed += 1
        return processed
