"""The Linux-style IOMMU driver: map/unmap for the four baseline modes.

This is the software whose cost the paper's Table 1 breaks down.  The
map path (paper Figure 4) allocates an IOVA, inserts the translation
into the radix page table (with the coherency synchronisation the
non-coherent walker requires) and returns the IOVA.  The unmap path
(Figure 6) finds the IOVA range, clears the PTEs, invalidates the IOTLB
according to the mode's policy, and frees the IOVA.

Every step both *executes* (real data-structure work against simulated
memory) and *charges cycles* to a :class:`~repro.perf.cycles.CycleAccount`
under the matching Table 1 component.
"""

from __future__ import annotations

import warnings
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Union

from repro import datapath as _datapath
from repro.dma import (
    DmaDirection,
    MapRequest,
    MapResult,
    UnmapRequest,
    UnmapResult,
    _map_result,
    _unmap_result,
)
from repro.iommu.hardware import Iommu
from repro.iommu.invalidation import (
    DEFAULT_FLUSH_THRESHOLD,
    DeferredInvalidation,
    StrictInvalidation,
)
from repro.iommu.page_table import RadixPageTable
from repro.iova.base import IovaNotFoundError, IovaRange
from repro.iova.linux_allocator import LinuxIovaAllocator
from repro.iova.magazine import MagazineIovaAllocator
from repro.memory.address import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from repro.memory.physical import MemorySystem
from repro.modes import Mode
from repro.obs.tracer import TRACE
from repro.perf.costs import CostModel, CostPolicy
from repro.perf.cycles import Component, CycleAccount
import repro.perf.cycles as perf_cycles

#: default IOVA space limit: the 32-bit DMA boundary, in pages.
DMA_32BIT_PFN = (1 << 32) >> 12


class LiveMapping(tuple):
    """Book-keeping for one live IOVA mapping.

    Tuple-backed (see :class:`~repro.iova.base.IovaRange`): one per map
    on the hot path, attribute access preserved for callers.
    """

    __slots__ = ()

    def __new__(
        cls, rng: IovaRange, phys_addr: int, size: int, direction: DmaDirection
    ) -> "LiveMapping":
        return tuple.__new__(cls, (rng, phys_addr, size, direction))

    def __getnewargs__(self):
        # Pickle support for the custom positional __new__ (simulation
        # checkpoints serialise the live-mapping table).
        return tuple(self)

    rng: IovaRange = property(itemgetter(0))
    phys_addr: int = property(itemgetter(1))
    size: int = property(itemgetter(2))
    direction: DmaDirection = property(itemgetter(3))


class BaselineIommuDriver:
    """Per-device IOMMU driver for strict/strict+/defer/defer+ modes."""

    def __init__(
        self,
        mem: MemorySystem,
        iommu: Iommu,
        bdf: int,
        mode: Mode,
        cost_model: Optional[CostModel] = None,
        account: Optional[CycleAccount] = None,
        limit_pfn: int = DMA_32BIT_PFN,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
    ) -> None:
        if not mode.is_baseline_iommu:
            raise ValueError(f"BaselineIommuDriver does not handle mode {mode.label}")
        self.mem = mem
        self.iommu = iommu
        self.bdf = bdf
        self.mode = mode
        self.cost_model = cost_model if cost_model is not None else CostModel(mode)
        self.account = (
            account if account is not None else CycleAccount(label="iommu-driver")
        )

        if mode.uses_magazine_allocator:
            self.allocator: Union[LinuxIovaAllocator, MagazineIovaAllocator] = (
                MagazineIovaAllocator(limit_pfn)
            )
        else:
            self.allocator = LinuxIovaAllocator(limit_pfn)

        self.page_table = RadixPageTable(mem, iommu.coherency)
        iommu.attach_device(bdf, self.page_table)

        if mode.deferred_invalidation:
            self.invalidation: Union[StrictInvalidation, DeferredInvalidation] = (
                DeferredInvalidation(
                    iommu.iotlb, self.allocator, flush_threshold, qi=iommu.qi
                )
            )
        else:
            self.invalidation = StrictInvalidation(
                iommu.iotlb, self.allocator, qi=iommu.qi
            )

        # Per-invocation constants for the staged-charge fast path.
        # Under the CALIBRATED policy every cost method returns an
        # argument-independent constant, so the hot map/unmap paths can
        # stage pre-computed charges (folded in bulk by the account)
        # instead of re-deriving each one.  MICRO costs vary with the
        # observed operation counts, so they keep the scalar path.
        if self.cost_model.policy is CostPolicy.CALIBRATED:
            cm = self.cost_model
            self._staged_costs = (
                cm.iova_alloc(0, False),
                cm.page_table_update(1, 0, 0, is_map=True),
                cm.map_other(),
                cm.iova_find(0),
                cm.page_table_update(1, 0, 0, is_map=False),
                (
                    cm.iotlb_deferred_bookkeeping()
                    if mode.deferred_invalidation
                    else cm.iotlb_invalidate_single()
                ),
                cm.iova_free(0, False),
                cm.unmap_other(),
            )
        else:
            self._staged_costs = None

        self._live: Dict[int, LiveMapping] = {}
        self.maps = 0
        self.unmaps = 0
        #: optional hooks called as (vpn, pages) on map/unmap — used by
        #: the DMA-trace recorder for the §5.4 prefetcher study
        self.map_hook = None
        self.unmap_hook = None

    def attach_alias(self, bdf: int) -> None:
        """Attach another device to this driver's protection domain.

        Both devices then share the page table and its domain-tagged
        IOTLB entries (VT-d lets multiple requester IDs map to one
        domain, e.g. for multi-function devices behind one driver).
        """
        self.iommu.attach_device(bdf, self.page_table)

    # -- map (Figure 4) ---------------------------------------------------

    def map(self, phys_addr: int, size: int, direction: DmaDirection) -> int:
        """Deprecated positional form of :meth:`map_request`."""
        warnings.warn(
            "BaselineIommuDriver.map(phys, size, dir) is deprecated; use "
            "map_request(MapRequest(phys_addr=..., size=..., direction=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.map_request(
            MapRequest(phys_addr=phys_addr, size=size, direction=direction)
        ).device_addr

    def map_request(self, req: MapRequest) -> MapResult:
        """Map ``[phys_addr, phys_addr + size)``; the result carries its IOVA.

        ``req.ring`` is ignored — the baseline IOMMU has no per-ring
        tables.
        """
        phys_addr, size, direction, _ring = req
        if (
            _datapath.COLUMNAR_ENABLED
            and not TRACE.active
            and self.map_hook is None
            and self._staged_costs is not None
            and perf_cycles.BATCH_ENABLED
        ):
            return self._map_fast(phys_addr, size, direction)
        if size <= 0:
            raise ValueError("size must be positive")
        # Inline pages_spanned/page_offset/iova_from_vpn: this function
        # runs twice per packet and the helper-call overhead shows.
        pages = ((phys_addr + size - 1) >> PAGE_SHIFT) - (phys_addr >> PAGE_SHIFT) + 1

        # Step 3: IOVA allocation.
        rng = self.allocator.alloc(pages)
        account = self.account
        costs = self._staged_costs if perf_cycles.BATCH_ENABLED else None
        if costs is None:
            stats = self.allocator.stats
            cache_hit = (
                self.mode.uses_magazine_allocator and stats.last_alloc_visits == 0
            )
            account.charge(
                Component.IOVA_ALLOC,
                self.cost_model.iova_alloc(stats.last_alloc_visits, cache_hit),
            )
        else:
            account.stage(Component.IOVA_ALLOC, costs[0])

        # Step 4: insert the translation(s) into the page table hierarchy.
        entries = 0
        tables = 0
        pfn_lo = rng.pfn_lo
        phys_base = phys_addr & ~PAGE_MASK
        map_page = self.page_table.map_page
        for i in range(pages):
            op = map_page((pfn_lo + i) << PAGE_SHIFT, phys_base + i * PAGE_SIZE, direction)
            entries += op.entries_written
            tables += op.tables_allocated
        if costs is None:
            account.charge(
                Component.MAP_PAGE_TABLE,
                self.cost_model.page_table_update(pages, entries, tables, is_map=True),
                events=pages,
            )
            # Steps 1/2/5: pinning, wrapper glue ("other" in Table 1).
            account.charge(Component.MAP_OTHER, self.cost_model.map_other())
        else:
            account.stage(
                Component.MAP_PAGE_TABLE,
                costs[1] if pages == 1 else costs[1] * pages,
                events=pages,
            )
            account.stage(Component.MAP_OTHER, costs[2])

        iova = (pfn_lo << PAGE_SHIFT) | (phys_addr & PAGE_MASK)
        self._live[pfn_lo] = LiveMapping(rng, phys_addr, size, direction)
        self.maps += 1
        if self.map_hook is not None:
            self.map_hook(pfn_lo, rng.pages)
        if TRACE.active:
            TRACE.emit(
                "map",
                layer="iommu",
                bdf=self.bdf,
                phys_addr=phys_addr,
                size=size,
                device_addr=iova,
                pages=pages,
            )
        return _map_result(iova)

    def _map_fast(
        self, phys_addr: int, size: int, direction: DmaDirection
    ) -> MapResult:
        """Columnar-build map body: identical work and staged charges.

        Entered only when the tracer is off, no map hook is installed,
        and per-mode CALIBRATED costs are staged — so the per-op stats
        objects and the cost-model branches of :meth:`map_request` are
        provably dead and skipped.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        pages = ((phys_addr + size - 1) >> PAGE_SHIFT) - (phys_addr >> PAGE_SHIFT) + 1
        rng = self.allocator.alloc(pages)
        account = self.account
        costs = self._staged_costs
        account.stage(Component.IOVA_ALLOC, costs[0])
        pfn_lo = rng[0]
        map_page_fast = self.page_table.map_page_fast
        phys_base = phys_addr & ~PAGE_MASK
        if pages == 1:
            map_page_fast(pfn_lo << PAGE_SHIFT, phys_base, direction)
            account.stage(Component.MAP_PAGE_TABLE, costs[1])
        else:
            for i in range(pages):
                map_page_fast(
                    (pfn_lo + i) << PAGE_SHIFT, phys_base + i * PAGE_SIZE, direction
                )
            account.stage(Component.MAP_PAGE_TABLE, costs[1] * pages, events=pages)
        account.stage(Component.MAP_OTHER, costs[2])
        self._live[pfn_lo] = LiveMapping(rng, phys_addr, size, direction)
        self.maps += 1
        return _map_result((pfn_lo << PAGE_SHIFT) | (phys_addr & PAGE_MASK))

    # -- unmap (Figure 6) ---------------------------------------------------

    def unmap(self, iova: int, end_of_burst: bool = False) -> int:
        """Deprecated positional form of :meth:`unmap_request`."""
        warnings.warn(
            "BaselineIommuDriver.unmap(iova, end_of_burst) is deprecated; use "
            "unmap_request(UnmapRequest(device_addr=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.unmap_request(
            UnmapRequest(device_addr=iova, end_of_burst=end_of_burst)
        ).phys_addr

    def unmap_request(self, req: UnmapRequest) -> UnmapResult:
        """Tear down the mapping at ``req.device_addr``.

        ``end_of_burst`` is accepted for interface parity with the
        rIOMMU driver; the baseline modes ignore it (strict invalidates
        every entry, deferred batches globally).
        """
        iova, _end_of_burst = req
        pfn = iova >> PAGE_SHIFT

        # Step: find the IOVA in the allocator's tree.
        rng = self.allocator.find(pfn)
        account = self.account
        costs = self._staged_costs if perf_cycles.BATCH_ENABLED else None
        if costs is None:
            account.charge(
                Component.IOVA_FIND,
                self.cost_model.iova_find(self.allocator.stats.last_find_visits),
            )
        else:
            account.stage(Component.IOVA_FIND, costs[3])
        mapping = self._live.pop(rng.pfn_lo, None)
        if mapping is None:
            raise IovaNotFoundError(f"IOVA {iova:#x} is not a live mapping")

        # Step 2: remove the translation from the page table hierarchy.
        entries = 0
        domain_id = self.page_table.domain_id
        pfn_lo = rng.pfn_lo
        unmap_page = self.page_table.unmap_page
        mark_backing_invalid = self.iommu.iotlb.mark_backing_invalid
        for i in range(rng.pages):
            op = unmap_page((pfn_lo + i) << PAGE_SHIFT)
            entries += op.entries_written
            mark_backing_invalid(domain_id, pfn_lo + i)
        if costs is None:
            account.charge(
                Component.UNMAP_PAGE_TABLE,
                self.cost_model.page_table_update(rng.pages, entries, 0, is_map=False),
                events=rng.pages,
            )
        else:
            account.stage(
                Component.UNMAP_PAGE_TABLE,
                costs[4] if rng.pages == 1 else costs[4] * rng.pages,
                events=rng.pages,
            )

        # The unmap event is emitted here — after the page table no
        # longer maps the range, before the mode's invalidation policy
        # runs — so the protection auditor sees the vulnerability window
        # open exactly when the torn-down pages become IOTLB-only
        # reachable, and a deferred flush triggered by this very unmap
        # closes the window it opened.
        if TRACE.active:
            TRACE.emit(
                "unmap",
                layer="iommu",
                bdf=self.bdf,
                device_addr=iova,
                phys_addr=mapping.phys_addr,
                pages=rng.pages,
                domain=domain_id,
                deferred=self.mode.deferred_invalidation,
            )

        # Steps 3+4: IOTLB invalidation and IOVA free, per policy.
        if self.mode.deferred_invalidation:
            if costs is None:
                account.charge(
                    Component.IOTLB_INV, self.cost_model.iotlb_deferred_bookkeeping()
                )
                flushed = self.invalidation.on_unmap(domain_id, rng)
                if flushed and self.cost_model.policy is CostPolicy.MICRO:
                    account.charge(
                        Component.IOTLB_INV,
                        self.cost_model.iotlb_global_flush(),
                        events=0,
                    )
            else:
                # The MICRO-only flush surcharge cannot apply here: the
                # staged path runs only under CALIBRATED.
                account.stage(Component.IOTLB_INV, costs[5])
                self.invalidation.on_unmap(domain_id, rng)
        else:
            # One page-selective invalidation covers the whole range
            # (multi-page unmaps issue a single ranged IOTLB flush).
            if costs is None:
                account.charge(
                    Component.IOTLB_INV, self.cost_model.iotlb_invalidate_single()
                )
            else:
                account.stage(Component.IOTLB_INV, costs[5])
            self.invalidation.on_unmap(domain_id, rng)
        if costs is None:
            free_stats = self.allocator.stats
            cached = self.mode.uses_magazine_allocator
            account.charge(
                Component.IOVA_FREE,
                self.cost_model.iova_free(free_stats.last_free_visits, cached),
            )
            # Step 5: hand the buffer back up the stack ("other").
            account.charge(Component.UNMAP_OTHER, self.cost_model.unmap_other())
        else:
            account.stage(Component.IOVA_FREE, costs[6])
            account.stage(Component.UNMAP_OTHER, costs[7])
        self.unmaps += 1
        if self.unmap_hook is not None:
            self.unmap_hook(rng.pfn_lo, rng.pages)
        return _unmap_result(mapping.phys_addr)

    def unmap_burst(
        self, device_addrs: Sequence[int], end_of_burst: bool = True
    ) -> List[int]:
        """Unmap a completion burst; returns the physical addresses.

        Semantically a loop of :meth:`unmap_request` calls.  The
        columnar body keeps all stateful work (IOVA-tree finds, page
        table teardown, the mode's invalidation policy) per item in the
        same order, but defers the constant CALIBRATED charges and
        stages each component once per burst — the variable-cost
        UNMAP_PAGE_TABLE charges are run-length encoded so the staged
        folds match the scalar sequence exactly.
        """
        costs = self._staged_costs if perf_cycles.BATCH_ENABLED else None
        if (
            costs is None
            or self.unmap_hook is not None
            or TRACE.active
            or not _datapath.COLUMNAR_ENABLED
        ):
            return [
                self.unmap_request(UnmapRequest(device_addr=addr)).phys_addr
                for addr in device_addrs
            ]

        allocator = self.allocator
        live = self._live
        page_table = self.page_table
        domain_id = page_table.domain_id
        unmap_page = page_table.unmap_page
        mark_backing_invalid = self.iommu.iotlb.mark_backing_invalid
        on_unmap = self.invalidation.on_unmap
        phys_addrs: List[int] = []
        # staging tallies, only folded into the account in ``finally``
        n_find = 0
        pt_runs: List[List] = []  # run-length: [cost, events, count]
        n_inv = 0
        done = 0
        try:
            for addr in device_addrs:
                rng = allocator.find(addr >> PAGE_SHIFT)
                n_find += 1
                pfn_lo = rng.pfn_lo
                mapping = live.pop(pfn_lo, None)
                if mapping is None:
                    raise IovaNotFoundError(f"IOVA {addr:#x} is not a live mapping")

                pages = rng.pages
                for i in range(pages):
                    unmap_page((pfn_lo + i) << PAGE_SHIFT)
                    mark_backing_invalid(domain_id, pfn_lo + i)
                cost = costs[4] if pages == 1 else costs[4] * pages
                if pt_runs and pt_runs[-1][0] == cost and pt_runs[-1][1] == pages:
                    pt_runs[-1][2] += 1
                else:
                    pt_runs.append([cost, pages, 1])

                n_inv += 1
                on_unmap(domain_id, rng)
                phys_addrs.append(mapping.phys_addr)
                done += 1
        finally:
            account = self.account
            if n_find:
                account.stage_many(Component.IOVA_FIND, costs[3], n_find)
            for cost, events, count in pt_runs:
                account.stage_many(
                    Component.UNMAP_PAGE_TABLE, cost, count, events=events
                )
            if n_inv:
                account.stage_many(Component.IOTLB_INV, costs[5], n_inv)
            if done:
                account.stage_many(Component.IOVA_FREE, costs[6], done)
                account.stage_many(Component.UNMAP_OTHER, costs[7], done)
                self.unmaps += done
        return phys_addrs

    # -- introspection / teardown -----------------------------------------------

    def live_mappings(self) -> int:
        """Number of mappings currently live from the driver's viewpoint."""
        return len(self._live)

    def pending_invalidations(self) -> int:
        """Unmaps queued behind the deferred flush (0 for strict modes)."""
        return self.invalidation.pending

    def shutdown(self) -> None:
        """Drain deferred invalidations and detach from the IOMMU."""
        self.invalidation.drain()
        self.iommu.detach_device(self.bdf)
