"""IOTLB invalidation policies: strict (immediate) vs deferred (batched).

Strict protection invalidates each IOTLB entry as part of the unmap, at
~2,100 cycles per invalidation.  Deferred protection queues the freed
IOVAs and, once 250 accumulate, flushes the *entire* IOTLB and only then
returns the IOVAs to the allocator (paper §3.2).  Deferral buys speed
at the price of a vulnerability window: until the flush, the device can
still reach the unmapped buffers through stale IOTLB entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.iommu.iotlb import Iotlb
from repro.iova.base import IovaAllocator, IovaRange

#: Linux's deferred-mode batch size (paper §3.2).
DEFAULT_FLUSH_THRESHOLD = 250


@dataclass
class InvalidationStats:
    """How many invalidation operations each policy performed."""

    single: int = 0
    global_flushes: int = 0
    queued: int = 0


class StrictInvalidation:
    """Invalidate each entry immediately; free the IOVA right away.

    When a :class:`~repro.iommu.qi.QueuedInvalidation` interface is
    supplied, invalidations go through the real memory-resident queue
    with a wait-descriptor handshake — the mechanism whose round trip
    costs the ~2,100 cycles of Table 1.
    """

    def __init__(self, iotlb: Iotlb, allocator: IovaAllocator, qi=None) -> None:
        self.iotlb = iotlb
        self.allocator = allocator
        self.qi = qi
        self._status_addr = qi.alloc_status_addr() if qi is not None else 0
        self.stats = InvalidationStats()

    def on_unmap(self, tag: int, rng: IovaRange) -> int:
        """Invalidate the range's pages (by domain tag) and free the range.

        Returns the number of single-entry invalidations issued.
        """
        if self.qi is not None:
            # One queued handshake covers the range (page-selective
            # invalidation); per-page submission for multi-page ranges,
            # draining the queue whenever it fills (large unmaps can
            # exceed the queue depth).
            from repro.iommu.qi import QueueFullError

            for vpn in range(rng.pfn_lo, rng.pfn_hi + 1):
                try:
                    self.qi.submit_page_invalidation(tag, vpn)
                except QueueFullError:
                    self.qi.ring_doorbell()
                    self.qi.submit_page_invalidation(tag, vpn)
                self.stats.single += 1
            self.qi.submit_wait(self._status_addr, 1)
            self.qi.ring_doorbell()
        else:
            for vpn in range(rng.pfn_lo, rng.pfn_hi + 1):
                self.iotlb.invalidate(tag, vpn)
                self.stats.single += 1
        self.allocator.free(rng)
        return rng.pages

    def drain(self) -> int:
        """Nothing is ever queued in strict mode."""
        return 0

    @property
    def pending(self) -> int:
        """Queued-but-unflushed unmaps (always 0 for strict)."""
        return 0


class DeferredInvalidation:
    """Queue invalidations; flush everything once the batch fills."""

    def __init__(
        self,
        iotlb: Iotlb,
        allocator: IovaAllocator,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        on_flush: Optional[Callable[[], None]] = None,
        qi=None,
    ) -> None:
        if flush_threshold <= 0:
            raise ValueError("flush_threshold must be positive")
        self.iotlb = iotlb
        self.allocator = allocator
        self.flush_threshold = flush_threshold
        self.stats = InvalidationStats()
        self._queue: List[Tuple[int, IovaRange]] = []
        self._on_flush = on_flush
        self.qi = qi
        self._status_addr = qi.alloc_status_addr() if qi is not None else 0

    def on_unmap(self, tag: int, rng: IovaRange) -> int:
        """Queue the range; flush the whole IOTLB when the batch fills.

        Returns the number of global flushes triggered (0 or 1).
        """
        self._queue.append((tag, rng))
        self.stats.queued += 1
        if len(self._queue) >= self.flush_threshold:
            self.flush()
            return 1
        return 0

    def flush(self) -> int:
        """Flush the IOTLB and release every queued IOVA range."""
        if not self._queue:
            return 0
        if self.qi is not None:
            self.qi.submit_global_invalidation()
            self.qi.submit_wait(self._status_addr, 1)
            self.qi.ring_doorbell()
        else:
            self.iotlb.invalidate_all()
        self.stats.global_flushes += 1
        drained = len(self._queue)
        for _tag, rng in self._queue:
            self.allocator.free(rng)
        self._queue.clear()
        if self._on_flush is not None:
            self._on_flush()
        return drained

    def drain(self) -> int:
        """Force a flush regardless of queue depth (device teardown)."""
        return self.flush()

    @property
    def pending(self) -> int:
        """Number of unmaps waiting for the batched flush."""
        return len(self._queue)
