"""The baseline IOMMU hardware datapath (paper Figure 5).

Every DMA a device performs carries its requester ID (BDF) and an IOVA;
:meth:`Iommu.translate` consults the IOTLB, walks the device's radix
page table on a miss, and returns the physical address — or raises an
I/O page fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dma import DmaDirection
from repro.faults import ContextFault, PermissionFault
from repro.iommu.context import ContextTables
from repro.iommu.iotlb import Iotlb, IotlbEntry, DEFAULT_IOTLB_CAPACITY
from repro.iommu.page_table import RadixPageTable, direction_allowed
from repro.memory.address import PAGE_MASK, PAGE_SHIFT
from repro.memory.coherency import CoherencyDomain
from repro.memory.physical import MemorySystem
from repro.obs.tracer import TRACE


@dataclass
class TranslationStats:
    """Datapath counters: translations, walks, walk depth."""

    translations: int = 0
    walks: int = 0
    walk_levels: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.translations = 0
        self.walks = 0
        self.walk_levels = 0


class Iommu:
    """Baseline Intel-style IOMMU: context tables + radix walks + IOTLB."""

    def __init__(
        self,
        mem: MemorySystem,
        coherency: CoherencyDomain = None,
        iotlb_capacity: int = DEFAULT_IOTLB_CAPACITY,
    ) -> None:
        self.mem = mem
        self.coherency = coherency if coherency is not None else CoherencyDomain()
        self.contexts = ContextTables(mem, self.coherency)
        self.iotlb = Iotlb(iotlb_capacity)
        # The queued-invalidation interface (imported lazily to avoid a
        # module cycle with the iotlb import above).
        from repro.iommu.qi import QueuedInvalidation

        self.qi = QueuedInvalidation(mem, self.iotlb)
        self.stats = TranslationStats()
        self._tables_by_root: Dict[int, RadixPageTable] = {}
        self._tables_by_bdf: Dict[int, RadixPageTable] = {}
        #: bumped whenever the bdf -> page-table association changes;
        #: translation memos include it in their validity token.
        self.epoch = 0
        #: optional hook called as (bdf, vpn) on every translation — used
        #: by the DMA-trace recorder for the §5.4 prefetcher study
        self.trace_hook = None

    # -- OS side ------------------------------------------------------------

    def attach_device(self, bdf: int, page_table: RadixPageTable) -> None:
        """Associate ``bdf`` with a page table via the context tables."""
        self.epoch += 1
        self.contexts.attach(bdf, page_table.root_addr)
        self._tables_by_root[page_table.root_addr] = page_table
        self._tables_by_bdf[bdf] = page_table

    def detach_device(self, bdf: int) -> None:
        """Remove ``bdf``'s context entry and flush its domain's entries.

        If other devices still share the domain, their next accesses
        simply re-walk and re-fill the cache.
        """
        self.epoch += 1
        self.contexts.detach(bdf)
        table = self._tables_by_bdf.pop(bdf, None)
        if table is not None:
            if table not in self._tables_by_bdf.values():
                self._tables_by_root.pop(table.root_addr, None)
            self.iotlb.invalidate_device(table.domain_id)

    def page_table_of(self, bdf: int) -> RadixPageTable:
        """The page table currently attached for ``bdf``."""
        try:
            return self._tables_by_bdf[bdf]
        except KeyError:
            raise ContextFault(f"no device attached at bdf {bdf:#06x}", bdf=bdf)

    # -- hardware side ------------------------------------------------------

    def translate(self, bdf: int, iova: int, access: DmaDirection) -> int:
        """Translate ``iova`` for a DMA of direction ``access``.

        Cached translations are tagged with the *domain* ID of the
        device's page table (VT-d semantics), so devices sharing a
        domain share cached translations — and one invalidation covers
        them all.  IOTLB hit: permissions come from the cached entry —
        a stale entry therefore still grants access, which is precisely
        the deferred mode's vulnerability window.
        """
        stats = self.stats
        stats.translations += 1
        vpn = iova >> PAGE_SHIFT
        if self.trace_hook is not None:
            self.trace_hook(bdf, vpn)
        if TRACE.active:
            TRACE.emit("translate", layer="iommu", bdf=bdf, iova=iova)

        root_addr = self.contexts.lookup(bdf)
        table = self._tables_by_root.get(root_addr)
        if table is None:
            raise ContextFault(
                f"context entry for bdf {bdf:#06x} points at unknown table", bdf=bdf
            )
        entry = self.iotlb.lookup(table.domain_id, vpn)
        if entry is not None:
            if TRACE.active:
                TRACE.emit("iotlb_hit", layer="iommu", bdf=bdf, vpn=vpn)
                if not entry.backing_valid:
                    TRACE.emit("iotlb_stale", layer="iommu", bdf=bdf, vpn=vpn)
            if not direction_allowed(entry.perms, access):
                raise PermissionFault(
                    f"IOVA {iova:#x} does not permit {access!r}", bdf=bdf, iova=iova
                )
            return entry.frame_addr | (iova & PAGE_MASK)

        if TRACE.active:
            TRACE.emit("iotlb_miss", layer="iommu", bdf=bdf, vpn=vpn)
        result = table.walk(iova, access)
        stats.walks += 1
        stats.walk_levels += result.levels_read
        self.iotlb.insert(
            IotlbEntry(
                tag=table.domain_id,
                vpn=vpn,
                frame_addr=result.frame_addr,
                perms=result.perms,
            )
        )
        return result.frame_addr | (iova & PAGE_MASK)
