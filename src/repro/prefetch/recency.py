"""Recency-based TLB preloading (Saulsbury et al., ISCA'00 — paper's [44]).

The predictor threads all pages into an LRU *recency stack* and saves
each page's stack neighbours.  On an access to P, the pages that were
adjacent to P in the recency order last time are prefetched — the
intuition being that pages referenced together stay neighbours in the
stack across working-set sweeps.

The stack is an explicit doubly-linked list so every operation is O(1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.prefetch.base import Prefetcher


class _Node:
    __slots__ = ("vpn", "prev", "next")

    def __init__(self, vpn: int) -> None:
        self.vpn = vpn
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class RecencyPrefetcher(Prefetcher):
    """LRU-stack-neighbour predictor."""

    name = "recency"

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._nodes: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None  # least recent
        self._tail: Optional[_Node] = None  # most recent
        #: saved neighbour links: vpn -> (below, above) at last access
        self._links: Dict[int, List[Optional[int]]] = {}

    # -- linked-list plumbing ---------------------------------------------

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None

    def _push_tail(self, node: _Node) -> None:
        node.prev = self._tail
        node.next = None
        if self._tail is not None:
            self._tail.next = node
        self._tail = node
        if self._head is None:
            self._head = node

    # -- predictor interface -------------------------------------------------

    def record(self, vpn: int) -> None:
        node = self._nodes.get(vpn)
        if node is not None:
            below = node.prev.vpn if node.prev is not None else None
            above = node.next.vpn if node.next is not None else None
            self._links[vpn] = [below, above]
            self._unlink(node)
        else:
            if len(self._nodes) >= self.capacity and self._head is not None:
                evicted = self._head
                self._unlink(evicted)
                del self._nodes[evicted.vpn]
                self._links.pop(evicted.vpn, None)
            node = _Node(vpn)
            self._nodes[vpn] = node
            self._links.setdefault(vpn, [None, None])
        self._push_tail(node)

    def predict(self, vpn: int) -> Iterable[int]:
        links = self._links.get(vpn)
        if links is None:
            return ()
        return [neighbour for neighbour in links if neighbour is not None]

    def forget(self, vpn: int) -> None:
        node = self._nodes.pop(vpn, None)
        if node is not None:
            self._unlink(node)
        self._links.pop(vpn, None)

    def history_size(self) -> int:
        return len(self._links)
