"""Prefetcher evaluation harness: the §5.4 comparison.

Replays a DMA trace through each prefetcher (in the paper's baseline
and "store-invalidated-addresses" variants, at several history sizes)
and through the rIOTLB itself, producing the bottom-line the paper
reports: the baseline variants are ineffective, Recency and Markov
predict most accesses only once their history outgrows the ring, the
Distance prefetcher stays ineffective, and the rIOTLB needs two entries
per ring with always-correct "predictions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.prefetch.base import Prefetcher, PrefetchSimulator, PrefetchStats
from repro.prefetch.distance import DistancePrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.trace import DmaTrace, EventKind


@dataclass
class PrefetcherOutcome:
    """One prefetcher configuration's replay outcome."""

    name: str
    variant: str  # "baseline" or "modified"
    history_capacity: int
    stats: PrefetchStats

    @property
    def hit_rate(self) -> float:
        """TLB+prefetch hit rate on the trace."""
        return self.stats.hit_rate


PREFETCHER_FACTORIES: Dict[str, Callable[[int], Prefetcher]] = {
    "markov": lambda capacity: MarkovPrefetcher(capacity=capacity),
    "recency": lambda capacity: RecencyPrefetcher(capacity=capacity),
    "distance": lambda capacity: DistancePrefetcher(capacity=capacity),
}


def evaluate_prefetcher(
    name: str,
    trace: DmaTrace,
    history_capacity: int,
    modified: bool,
    tlb_entries: int = 32,
) -> PrefetcherOutcome:
    """Replay ``trace`` through one prefetcher configuration."""
    prefetcher = PREFETCHER_FACTORIES[name](history_capacity)
    simulator = PrefetchSimulator(
        prefetcher,
        tlb_entries=tlb_entries,
        store_invalidated=modified,
        check_mapped=True,
    )
    stats = simulator.run(trace)
    return PrefetcherOutcome(
        name=name,
        variant="modified" if modified else "baseline",
        history_capacity=history_capacity,
        stats=stats,
    )


def evaluate_matrix(
    trace: DmaTrace,
    history_capacities: Sequence[int],
    names: Sequence[str] = ("markov", "recency", "distance"),
    tlb_entries: int = 32,
) -> List[PrefetcherOutcome]:
    """The full §5.4 sweep: every prefetcher, both variants, all sizes."""
    outcomes: List[PrefetcherOutcome] = []
    for name in names:
        for modified in (False, True):
            for capacity in history_capacities:
                outcomes.append(
                    evaluate_prefetcher(name, trace, capacity, modified, tlb_entries)
                )
    return outcomes


@dataclass
class RiotlbReplay:
    """The rIOTLB's behaviour on the same access stream."""

    accesses: int
    hits: int
    entries_per_ring: int = 2  # current + prefetched next

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without a flat-table fetch."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


def replay_riotlb(trace: DmaTrace) -> RiotlbReplay:
    """Replay ACCESS events the way the rIOTLB would serve them.

    Only meaningful for *synthesized ring traces*, whose page numbers
    are ring-sequential by construction (which is exactly what rIOVAs
    are: ring indices).  The current-entry/next-entry pair serves every
    access except the first, and its "predictions" (the prefetched next
    rPTE) are always correct.  For traces recorded from the baseline
    simulation use :func:`measure_riotlb`, which runs the real rIOMMU.
    """
    accesses = [event.vpn for event in trace if event.kind is EventKind.ACCESS]
    hits = 0
    previous = None
    for vpn in accesses:
        if previous is not None and vpn in (previous, previous + 1):
            hits += 1
        previous = vpn
    return RiotlbReplay(accesses=len(accesses), hits=hits)


def measure_riotlb(packets: int = 500) -> "RIotlbMeasurement":
    """Run the functional rIOMMU NIC simulation and report rIOTLB stats.

    This is the apples-to-apples counterpart of the prefetcher replays:
    the same Netperf-stream-like traffic, served by the real rIOTLB
    logic (one entry per ring plus the prefetched next rPTE).
    """
    from repro.devices.nic import SimulatedNic
    from repro.kernel.machine import Machine
    from repro.kernel.net_driver import NetDriver
    from repro.modes import Mode
    from repro.sim.netperf import NIC_BDF
    from repro.sim.setups import MLX_SETUP

    machine = Machine(Mode.RIOMMU)
    nic = SimulatedNic(machine.bus, NIC_BDF, MLX_SETUP.nic_profile)
    driver = NetDriver(machine, nic, coalesce_threshold=64)
    driver.fill_rx()
    payload = b"\xee" * 1500
    sent = 0
    while sent < packets:
        if driver.transmit(payload):
            sent += 1
            if sent % 32 == 0:
                driver.pump_tx()
        else:
            driver.pump_tx()
    driver.pump_tx()
    driver.flush_tx()
    assert machine.riommu is not None
    stats = machine.riommu.riotlb.stats
    return RIotlbMeasurement(
        translations=stats.translations,
        entry_hits=stats.hits,
        prefetch_hits=stats.prefetch_hits,
        walks=stats.walks,
        sync_walks=stats.sync_walks,
    )


@dataclass
class RIotlbMeasurement:
    """Functional rIOTLB counters from a real simulated run."""

    translations: int
    entry_hits: int
    prefetch_hits: int
    walks: int
    sync_walks: int

    @property
    def served_without_walk(self) -> float:
        """Fraction of translations served without fetching from DRAM."""
        if self.translations == 0:
            return 0.0
        return 1.0 - self.walks / self.translations
