"""DMA traces for the §5.4 prefetcher study.

The paper's authors logged the DMAs of emulated devices under
KVM/QEMU.  Our equivalent records traces from the functional NIC
simulation (every translation, map and unmap event, in order), and can
also synthesize pure ring-order traces for controlled studies.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.devices.nic import SimulatedNic
from repro.kernel.machine import Machine
from repro.kernel.net_driver import NetDriver
from repro.modes import Mode
from repro.perf.model import ETHERNET_MTU_BYTES
from repro.sim.netperf import NIC_BDF
from repro.sim.setups import MLX_SETUP, Setup


class EventKind(enum.Enum):
    """What happened to an I/O virtual page."""

    MAP = "map"
    ACCESS = "access"
    UNMAP = "unmap"


@dataclass(frozen=True)
class TraceEvent:
    """One event on one I/O virtual page."""

    kind: EventKind
    vpn: int


DmaTrace = List[TraceEvent]


class TraceRecorder:
    """Hooks a machine's IOMMU layer and records a :data:`DmaTrace`."""

    def __init__(self, machine: Machine, bdf: int) -> None:
        if machine.iommu is None:
            raise ValueError("trace recording needs a baseline-IOMMU machine")
        self.trace: DmaTrace = []
        machine.iommu.trace_hook = self._on_access
        driver = machine.dma_api(bdf).driver  # type: ignore[attr-defined]
        driver.map_hook = self._on_map
        driver.unmap_hook = self._on_unmap

    def _on_access(self, _bdf: int, vpn: int) -> None:
        self.trace.append(TraceEvent(EventKind.ACCESS, vpn))

    def _on_map(self, vpn: int, pages: int) -> None:
        for i in range(pages):
            self.trace.append(TraceEvent(EventKind.MAP, vpn + i))

    def _on_unmap(self, vpn: int, pages: int) -> None:
        for i in range(pages):
            self.trace.append(TraceEvent(EventKind.UNMAP, vpn + i))


def record_netperf_trace(
    packets: int = 500,
    setup: Setup = MLX_SETUP,
    mode: Mode = Mode.STRICT_PLUS,
    burst: int = 64,
) -> DmaTrace:
    """Record the DMA trace of a Netperf-stream-like run.

    Builds a baseline-IOMMU machine and NIC driver, attaches the
    recorder's hooks, then pushes ``packets`` transmit packets through.
    """
    machine = Machine(mode, cost_scale=setup.cost_scale(mode))
    nic = SimulatedNic(machine.bus, NIC_BDF, setup.nic_profile)
    driver = NetDriver(machine, nic, coalesce_threshold=burst)
    recorder = TraceRecorder(machine, NIC_BDF)
    driver.fill_rx()
    payload = b"\xcd" * ETHERNET_MTU_BYTES
    sent = 0
    while sent < packets:
        if driver.transmit(payload):
            sent += 1
            if sent % 32 == 0:
                driver.pump_tx()
        else:
            driver.pump_tx()
    driver.pump_tx()
    driver.flush_tx()
    return recorder.trace


def synthesize_ring_trace(
    ring_entries: int,
    rounds: int,
    buffers_per_packet: int = 1,
    reuse_window: Optional[int] = None,
    scramble_seed: Optional[int] = 7,
) -> DmaTrace:
    """Synthesize the canonical ring pattern: map -> access -> unmap in order.

    ``reuse_window`` models the IOVA allocator reusing addresses after
    that many allocations (Linux reuses freed IOVAs quickly); None means
    every mapping gets a fresh page, which defeats history-based
    prefetchers entirely.  ``scramble_seed`` permutes the reused pages
    so consecutive ring slots do not sit on consecutive pages — real
    target buffers land wherever the allocator put them, which is what
    starves stride-based (Distance) prefetchers.
    """
    trace: DmaTrace = []
    next_fresh = 0
    permutation: Optional[List[int]] = None
    if reuse_window is not None and scramble_seed is not None:
        permutation = list(range(reuse_window))
        random.Random(scramble_seed).shuffle(permutation)

    def vpn_for(slot_index: int) -> int:
        nonlocal next_fresh
        if reuse_window is not None:
            slot = slot_index % reuse_window
            return permutation[slot] if permutation is not None else slot
        vpn = next_fresh
        next_fresh += 1
        return vpn

    slots = ring_entries * buffers_per_packet
    live: List[int] = []
    counter = 0
    for _ in range(rounds):
        for _ in range(ring_entries):
            for _ in range(buffers_per_packet):
                vpn = vpn_for(counter)
                counter += 1
                trace.append(TraceEvent(EventKind.MAP, vpn))
                live.append(vpn)
        for vpn in live:
            trace.append(TraceEvent(EventKind.ACCESS, vpn))
        for vpn in live:
            trace.append(TraceEvent(EventKind.UNMAP, vpn))
        live.clear()
    return trace


def access_count(trace: DmaTrace) -> int:
    """Number of ACCESS events in a trace."""
    return sum(1 for event in trace if event.kind is EventKind.ACCESS)


# -- persistence ----------------------------------------------------------

_KIND_CODES = {EventKind.MAP: "M", EventKind.ACCESS: "A", EventKind.UNMAP: "U"}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def save_trace(trace: DmaTrace, path) -> None:
    """Write a trace to disk, one ``<code> <vpn>`` line per event.

    The format is deliberately trivial (``M 123`` / ``A 123`` /
    ``U 123``) so traces can be produced or consumed by other tools.
    """
    with open(path, "w") as handle:
        handle.write("# rIOMMU-repro DMA trace v1\n")
        for event in trace:
            handle.write(f"{_KIND_CODES[event.kind]} {event.vpn}\n")


def load_trace(path) -> DmaTrace:
    """Read a trace written by :func:`save_trace`."""
    trace: DmaTrace = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                code, vpn_text = line.split()
                trace.append(TraceEvent(_CODE_KINDS[code], int(vpn_text)))
            except (ValueError, KeyError):
                raise ValueError(f"{path}:{line_no}: malformed trace line {line!r}")
    return trace
