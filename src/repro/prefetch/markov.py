"""Markov TLB prefetcher (Joseph & Grunwald, ISCA'97 — the paper's [31]).

Learns first-order transitions between I/O virtual pages: if page B
tends to follow page A, an access to A prefetches B.  The transition
table is capacity-bounded; each node remembers up to ``ways``
successors with simple LRU replacement inside the node.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.prefetch.base import Prefetcher


class MarkovPrefetcher(Prefetcher):
    """First-order Markov predictor over the page-access stream."""

    name = "markov"

    def __init__(self, capacity: int = 4096, ways: int = 2) -> None:
        if capacity <= 0 or ways <= 0:
            raise ValueError("capacity and ways must be positive")
        self.capacity = capacity
        self.ways = ways
        #: node table: vpn -> LRU-ordered successor set
        self._table: "OrderedDict[int, OrderedDict[int, None]]" = OrderedDict()
        self._last_vpn: Optional[int] = None

    def record(self, vpn: int) -> None:
        if self._last_vpn is not None:
            node = self._table.get(self._last_vpn)
            if node is None:
                if len(self._table) >= self.capacity:
                    self._table.popitem(last=False)
                node = OrderedDict()
                self._table[self._last_vpn] = node
            self._table.move_to_end(self._last_vpn)
            if vpn in node:
                node.move_to_end(vpn)
            else:
                if len(node) >= self.ways:
                    node.popitem(last=False)
                node[vpn] = None
        self._last_vpn = vpn

    def predict(self, vpn: int) -> Iterable[int]:
        node = self._table.get(vpn)
        if node is None:
            return ()
        # Most-recently confirmed successor first.
        return list(reversed(node.keys()))

    def forget(self, vpn: int) -> None:
        self._table.pop(vpn, None)
        for node in self._table.values():
            node.pop(vpn, None)
        if self._last_vpn == vpn:
            self._last_vpn = None

    def history_size(self) -> int:
        return len(self._table)
