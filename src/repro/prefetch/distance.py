"""Distance TLB prefetching (Kandiraju & Sivasubramaniam, ISCA'02 — [34]).

Instead of correlating absolute pages, the distance prefetcher
correlates *strides*: it keeps a table mapping the previous access
distance to the distances that tended to follow it, then predicts
``current_page + predicted_distance``.  Compact for regular strides —
but I/O rings produce erratic page distances (buffers are wherever the
allocator put them), which is why the paper found Distance ineffective
even after modification.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.prefetch.base import Prefetcher


class DistancePrefetcher(Prefetcher):
    """Stride-correlation predictor."""

    name = "distance"

    def __init__(self, capacity: int = 1024, ways: int = 2) -> None:
        if capacity <= 0 or ways <= 0:
            raise ValueError("capacity and ways must be positive")
        self.capacity = capacity
        self.ways = ways
        #: distance table: prev_distance -> LRU set of next distances
        self._table: "OrderedDict[int, OrderedDict[int, None]]" = OrderedDict()
        self._last_vpn: Optional[int] = None
        self._last_distance: Optional[int] = None

    def record(self, vpn: int) -> None:
        if self._last_vpn is not None:
            distance = vpn - self._last_vpn
            if self._last_distance is not None:
                node = self._table.get(self._last_distance)
                if node is None:
                    if len(self._table) >= self.capacity:
                        self._table.popitem(last=False)
                    node = OrderedDict()
                    self._table[self._last_distance] = node
                self._table.move_to_end(self._last_distance)
                if distance in node:
                    node.move_to_end(distance)
                else:
                    if len(node) >= self.ways:
                        node.popitem(last=False)
                    node[distance] = None
            self._last_distance = distance
        self._last_vpn = vpn

    def predict(self, vpn: int) -> Iterable[int]:
        if self._last_distance is None:
            return ()
        node = self._table.get(self._last_distance)
        if node is None:
            return ()
        return [vpn + distance for distance in reversed(node.keys())]

    def forget(self, vpn: int) -> None:
        # Distances are anonymous; there is no per-page history to drop.
        if self._last_vpn == vpn:
            self._last_vpn = None
            self._last_distance = None

    def history_size(self) -> int:
        return len(self._table)
