"""TLB prefetchers and DMA traces for the paper's §5.4 comparison."""

from repro.prefetch.base import (
    LruCache,
    Prefetcher,
    PrefetchSimulator,
    PrefetchStats,
)
from repro.prefetch.distance import DistancePrefetcher
from repro.prefetch.eval import (
    PREFETCHER_FACTORIES,
    PrefetcherOutcome,
    RIotlbMeasurement,
    RiotlbReplay,
    evaluate_matrix,
    evaluate_prefetcher,
    measure_riotlb,
    replay_riotlb,
)
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.trace import (
    DmaTrace,
    EventKind,
    TraceEvent,
    TraceRecorder,
    access_count,
    load_trace,
    record_netperf_trace,
    save_trace,
    synthesize_ring_trace,
)

__all__ = [
    "DistancePrefetcher",
    "DmaTrace",
    "EventKind",
    "LruCache",
    "MarkovPrefetcher",
    "PREFETCHER_FACTORIES",
    "Prefetcher",
    "PrefetcherOutcome",
    "PrefetchSimulator",
    "PrefetchStats",
    "RIotlbMeasurement",
    "RecencyPrefetcher",
    "RiotlbReplay",
    "TraceEvent",
    "TraceRecorder",
    "access_count",
    "evaluate_matrix",
    "evaluate_prefetcher",
    "load_trace",
    "measure_riotlb",
    "record_netperf_trace",
    "replay_riotlb",
    "save_trace",
    "synthesize_ring_trace",
]
