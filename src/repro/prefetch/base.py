"""TLB-prefetcher simulation framework for the §5.4 comparison.

A :class:`PrefetchSimulator` replays a DMA trace against an LRU TLB of
fixed capacity plus a prefetch buffer filled by a pluggable
:class:`Prefetcher`.  Two faithfulness knobs reproduce the paper's
methodology:

* ``store_invalidated`` — the paper found the *baseline* prefetchers
  ineffective "as IOVAs are invalidated immediately after being used",
  so they modified them to keep invalidated addresses in their history;
* predictions are only honoured if the predicted page is currently
  *mapped* ("mandated them to walk the page table and check that their
  predictions are mapped before making them").
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Set

from repro.prefetch.trace import DmaTrace, EventKind


class Prefetcher(abc.ABC):
    """Learns from the access stream and predicts upcoming pages."""

    #: human-readable name for tables
    name: str = "base"

    @abc.abstractmethod
    def record(self, vpn: int) -> None:
        """Observe one access (called for every ACCESS event)."""

    @abc.abstractmethod
    def predict(self, vpn: int) -> Iterable[int]:
        """Pages to prefetch after an access to ``vpn``."""

    def forget(self, vpn: int) -> None:
        """Drop ``vpn`` from history (baseline behaviour on unmap)."""

    @abc.abstractmethod
    def history_size(self) -> int:
        """Entries currently held in the predictor's history structure."""


@dataclass
class PrefetchStats:
    """Replay outcome."""

    accesses: int = 0
    tlb_hits: int = 0
    prefetch_hits: int = 0
    misses: int = 0
    predictions_made: int = 0
    predictions_suppressed_unmapped: int = 0
    history_entries_max: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served by TLB or prefetch buffer."""
        if self.accesses == 0:
            return 0.0
        return (self.tlb_hits + self.prefetch_hits) / self.accesses

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses the prefetcher eliminated."""
        would_miss = self.prefetch_hits + self.misses
        if would_miss == 0:
            return 0.0
        return self.prefetch_hits / would_miss


class LruCache:
    """Fixed-capacity LRU set of VPNs."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def touch(self, vpn: int) -> None:
        """Insert or refresh ``vpn``."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[vpn] = None

    def invalidate(self, vpn: int) -> None:
        """Remove ``vpn`` if present."""
        self._entries.pop(vpn, None)

    def __len__(self) -> int:
        return len(self._entries)


class PrefetchSimulator:
    """Replay a DMA trace through TLB + prefetch buffer + predictor."""

    def __init__(
        self,
        prefetcher: Prefetcher,
        tlb_entries: int = 32,
        prefetch_entries: int = 8,
        store_invalidated: bool = True,
        check_mapped: bool = True,
    ) -> None:
        self.prefetcher = prefetcher
        self.tlb = LruCache(tlb_entries)
        self.prefetch_buffer = LruCache(prefetch_entries)
        self.store_invalidated = store_invalidated
        self.check_mapped = check_mapped
        self._mapped: Set[int] = set()
        self.stats = PrefetchStats()

    def run(self, trace: DmaTrace) -> PrefetchStats:
        """Replay the trace; returns the accumulated statistics."""
        for event in trace:
            if event.kind is EventKind.MAP:
                self._mapped.add(event.vpn)
            elif event.kind is EventKind.UNMAP:
                self._mapped.discard(event.vpn)
                self.tlb.invalidate(event.vpn)
                self.prefetch_buffer.invalidate(event.vpn)
                if not self.store_invalidated:
                    self.prefetcher.forget(event.vpn)
            else:
                self._access(event.vpn)
        return self.stats

    def _access(self, vpn: int) -> None:
        self.stats.accesses += 1
        if vpn in self.tlb:
            self.stats.tlb_hits += 1
            self.tlb.touch(vpn)
        elif vpn in self.prefetch_buffer:
            self.stats.prefetch_hits += 1
            self.prefetch_buffer.invalidate(vpn)
            self.tlb.touch(vpn)
        else:
            self.stats.misses += 1
            self.tlb.touch(vpn)
        self.prefetcher.record(vpn)
        for predicted in self.prefetcher.predict(vpn):
            self.stats.predictions_made += 1
            if self.check_mapped and predicted not in self._mapped:
                self.stats.predictions_suppressed_unmapped += 1
                continue
            if predicted not in self.tlb:
                self.prefetch_buffer.touch(predicted)
        self.stats.history_entries_max = max(
            self.stats.history_entries_max, self.prefetcher.history_size()
        )
