"""The baseline Linux IOVA allocator (``drivers/iommu/iova.c``, ~v3.4).

This is the allocator behind the paper's ``strict`` and ``defer`` modes.
Allocation is top-down from ``limit_pfn`` over a red-black tree of live
ranges, with the ``cached32_node`` optimization: the search normally
starts from the most-recently inserted node instead of the top of the
tree.

The paper (§3.2) found "a nontrivial pathology ... that regularly causes
some allocations to be linear in the number of currently allocated
IOVAs".  The pathology is emergent in this implementation exactly as in
the kernel: when the cached node is reset by a free (``free.pfn_lo >=
cached.pfn_lo`` moves the cache *up* past long-lived mappings), the next
allocation has to descend node-by-node through the live set to find a
gap, and mixed allocation sizes (the Mellanox driver maps a small header
buffer and a multi-page data buffer per packet) fragment the space so
holes rarely fit.  ``stats.alloc_visits`` exposes the cost.
"""

from __future__ import annotations

from typing import Optional

from repro.iova.base import (
    IovaAllocator,
    IovaExhaustedError,
    IovaNotFoundError,
    IovaRange,
)
from repro.iova.rbtree import RBNode, RBTree


class LinuxIovaAllocator(IovaAllocator):
    """Faithful model of the v3.4 Linux per-domain IOVA allocator."""

    def __init__(self, limit_pfn: int) -> None:
        super().__init__(limit_pfn)
        self.tree = RBTree()
        #: Linux's ``cached32_node`` — the search hint.
        self._cached: Optional[RBNode] = None

    # -- allocation (alloc_iova / __alloc_and_insert_iova_range) ----------

    def alloc(self, pages: int = 1) -> IovaRange:
        """Allocate ``pages`` contiguous I/O virtual pages, top-down."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        self.stats.allocs += 1
        visits_before = self.tree.visits

        limit_pfn, curr = self._get_cached_node()
        walk_steps = 0
        found: Optional[int] = None
        predecessor = RBTree.predecessor
        while curr is not None:
            walk_steps += 1
            rng = curr.rng
            if limit_pfn < rng.pfn_lo:
                # The candidate window lies entirely below this node.
                pass
            elif limit_pfn <= rng.pfn_hi:
                # The window top lands inside this node: clamp below it.
                limit_pfn = rng.pfn_lo - 1
            else:
                # Node is fully below the window top: is the gap big enough?
                if rng.pfn_hi + pages <= limit_pfn:
                    found = limit_pfn
                    break
                limit_pfn = rng.pfn_lo - 1
            curr = predecessor(curr)
        if curr is None:
            # Ran past the lowest node: the region below is all free.
            if limit_pfn - pages + 1 >= 0:
                found = limit_pfn
        if found is None:
            self.stats.last_alloc_visits = walk_steps
            self.stats.alloc_visits += walk_steps
            raise IovaExhaustedError(
                f"no free IOVA range of {pages} pages below pfn {self.limit_pfn}"
            )

        new_rng = IovaRange(found - pages + 1, found)
        node = self.tree.insert(new_rng)
        # __cached_rbnode_insert_update: remember the new node as the hint.
        self._cached = node
        walk_steps += self.tree.visits - visits_before
        self.stats.last_alloc_visits = walk_steps
        self.stats.alloc_visits += walk_steps
        return new_rng

    def _get_cached_node(self):
        """Linux's ``__get_cached_rbnode``: pick search start + clamped limit."""
        if self._cached is None:
            return self.limit_pfn, self.tree.rightmost()
        # Start just below the cached node, from its predecessor.
        limit = self._cached.rng.pfn_lo - 1
        return limit, RBTree.predecessor(self._cached)

    # -- lookup (find_iova) -------------------------------------------------

    def find(self, pfn: int) -> IovaRange:
        """Binary-search the tree for the live range containing ``pfn``."""
        self.stats.finds += 1
        visits_before = self.tree.visits
        node = self.tree.find_containing(pfn)
        self.stats.last_find_visits = self.tree.visits - visits_before
        self.stats.find_visits += self.stats.last_find_visits
        if node is None:
            raise IovaNotFoundError(f"no allocated IOVA contains pfn {pfn}")
        return node.rng

    # -- free (__free_iova) ---------------------------------------------------

    def free(self, rng: IovaRange) -> None:
        """Release ``rng``; updates the cached hint like the kernel does."""
        self.stats.frees += 1
        visits_before = self.tree.visits
        node = self.tree.find_containing(rng.pfn_lo)
        if node is None or node.rng != rng:
            raise IovaNotFoundError(f"range {rng} is not allocated")
        # __cached_rbnode_delete_update: a free at-or-above the hint moves
        # the hint to the freed node's successor (possibly far up-tree).
        if self._cached is not None and rng.pfn_lo >= self._cached.rng.pfn_lo:
            self._cached = RBTree.successor(node)
        elif self._cached is node:
            self._cached = RBTree.successor(node)
        self.tree.delete(node)
        self.stats.last_free_visits = self.tree.visits - visits_before
        self.stats.free_visits += self.stats.last_free_visits

    def live_count(self) -> int:
        """Number of currently-allocated ranges."""
        return len(self.tree)
