"""IOVA allocators: the pathological Linux baseline and the constant-time cache."""

from repro.iova.base import (
    AllocatorStats,
    IovaAllocator,
    IovaExhaustedError,
    IovaNotFoundError,
    IovaRange,
)
from repro.iova.linux_allocator import LinuxIovaAllocator
from repro.iova.magazine import MagazineIovaAllocator
from repro.iova.rbtree import RBNode, RBTree

__all__ = [
    "AllocatorStats",
    "IovaAllocator",
    "IovaExhaustedError",
    "IovaNotFoundError",
    "IovaRange",
    "LinuxIovaAllocator",
    "MagazineIovaAllocator",
    "RBNode",
    "RBTree",
]
