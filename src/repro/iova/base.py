"""Common types for IOVA allocators.

An IOVA allocator hands out I/O virtual *page frame numbers* (PFNs),
mirroring the Linux ``iova`` layer: allocation requests are expressed in
pages and satisfied top-down from a per-domain limit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from operator import itemgetter


class IovaExhaustedError(RuntimeError):
    """The allocator could not find a free IOVA range."""


class IovaNotFoundError(KeyError):
    """No allocated IOVA range matches the given PFN."""


class IovaRange(tuple):
    """A half-open range of allocated I/O virtual PFNs ``[pfn_lo, pfn_hi]``.

    Both bounds are inclusive, matching Linux's ``struct iova``.
    Tuple-backed: one of these is created per map, and the C-level
    tuple constructor beats a frozen dataclass's guarded ``__setattr__``
    pair by a wide margin on that path.
    """

    __slots__ = ()

    def __new__(cls, pfn_lo: int, pfn_hi: int) -> "IovaRange":
        if pfn_lo < 0 or pfn_hi < pfn_lo:
            raise ValueError(f"invalid IOVA range [{pfn_lo}, {pfn_hi}]")
        return tuple.__new__(cls, (pfn_lo, pfn_hi))

    def __getnewargs__(self):
        # Spell out the __new__ args for pickle (tuple subclasses with a
        # custom __new__ don't round-trip otherwise); checkpoints of a
        # mid-run simulation carry these records in the allocator trees.
        return tuple(self)

    pfn_lo: int = property(itemgetter(0))
    pfn_hi: int = property(itemgetter(1))

    def __repr__(self) -> str:
        return f"IovaRange(pfn_lo={self[0]}, pfn_hi={self[1]})"

    @property
    def pages(self) -> int:
        """Number of pages covered by the range."""
        return self[1] - self[0] + 1

    def contains(self, pfn: int) -> bool:
        """True if ``pfn`` falls inside the range."""
        return self[0] <= pfn <= self[1]

    def overlaps(self, other: "IovaRange") -> bool:
        """True if the two ranges share at least one PFN."""
        return self[0] <= other[1] and other[0] <= self[1]


@dataclass
class AllocatorStats:
    """Operation counters used both for tests and for cycle charging.

    ``alloc_visits`` / ``find_visits`` count red-black-tree nodes touched
    during allocation and lookup; the Linux allocator's linear pathology
    shows up as ``alloc_visits`` growing with the number of live IOVAs.
    """

    allocs: int = 0
    frees: int = 0
    finds: int = 0
    alloc_visits: int = 0
    find_visits: int = 0
    free_visits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    last_alloc_visits: int = 0
    last_find_visits: int = 0
    last_free_visits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        for name in (
            "allocs",
            "frees",
            "finds",
            "alloc_visits",
            "find_visits",
            "free_visits",
            "cache_hits",
            "cache_misses",
            "last_alloc_visits",
            "last_find_visits",
            "last_free_visits",
        ):
            setattr(self, name, 0)


class IovaAllocator(abc.ABC):
    """Interface shared by the baseline and optimized IOVA allocators."""

    def __init__(self, limit_pfn: int) -> None:
        if limit_pfn <= 0:
            raise ValueError("limit_pfn must be positive")
        #: highest PFN the allocator may hand out (allocation is top-down)
        self.limit_pfn = limit_pfn
        self.stats = AllocatorStats()

    @abc.abstractmethod
    def alloc(self, pages: int = 1) -> IovaRange:
        """Allocate a range of ``pages`` I/O virtual pages."""

    @abc.abstractmethod
    def find(self, pfn: int) -> IovaRange:
        """Locate the live range containing ``pfn`` (used by unmap)."""

    @abc.abstractmethod
    def free(self, rng: IovaRange) -> None:
        """Release a previously-allocated range."""

    @abc.abstractmethod
    def live_count(self) -> int:
        """Number of currently-allocated ranges."""

    def free_pfn(self, pfn: int) -> IovaRange:
        """Find and free the range containing ``pfn``; returns the range."""
        rng = self.find(pfn)
        self.free(rng)
        return rng
