"""Constant-time IOVA allocator — the paper's ``strict+`` / ``defer+`` modes.

The authors replaced the pathological Linux allocator with one that
"consistently allocates/frees in constant time" (their FAST'15 EiovaR
work, cited as [37]).  The key idea: freed IOVA ranges are *cached* in
per-size freelists ("magazines") instead of being deleted from the
red-black tree.  A subsequent same-size allocation pops the cached range
in O(1); the range is still resident in the tree, so no tree surgery
happens on either path.

Two measured consequences from the paper's Table 1 fall out naturally:

* ``iova alloc`` drops from ~4000 to ~100 cycles (freelist pop),
* ``iova find`` during unmap gets *slower* (418 vs 249 cycles) because
  cached-but-free ranges stay in the tree, making it fuller and the
  logarithmic search longer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.iova.base import (
    IovaAllocator,
    IovaNotFoundError,
    IovaRange,
)
from repro.iova.linux_allocator import LinuxIovaAllocator


class MagazineIovaAllocator(IovaAllocator):
    """EiovaR-style allocator: per-size freelist cache over the rbtree."""

    def __init__(self, limit_pfn: int, max_cached_per_size: int = 1 << 20) -> None:
        super().__init__(limit_pfn)
        self._backend = LinuxIovaAllocator(limit_pfn)
        #: freed ranges kept resident in the tree, keyed by size in pages
        self._magazines: Dict[int, List[IovaRange]] = {}
        self._cached_ranges: set = set()
        self.max_cached_per_size = max_cached_per_size

    # -- allocation -----------------------------------------------------

    def alloc(self, pages: int = 1) -> IovaRange:
        """Pop a cached range of the right size, or fall back to the tree."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        self.stats.allocs += 1
        magazine = self._magazines.get(pages)
        if magazine:
            rng = magazine.pop()
            self._cached_ranges.discard(rng)
            self.stats.cache_hits += 1
            self.stats.last_alloc_visits = 0
            return rng
        self.stats.cache_misses += 1
        rng = self._backend.alloc(pages)
        self.stats.last_alloc_visits = self._backend.stats.last_alloc_visits
        self.stats.alloc_visits += self.stats.last_alloc_visits
        return rng

    # -- lookup -----------------------------------------------------------

    def find(self, pfn: int) -> IovaRange:
        """Find the *live* range containing ``pfn``.

        The search runs over the full tree (live + cached ranges), which
        is the source of the paper's slower strict+ ``iova find``.
        """
        self.stats.finds += 1
        rng = self._backend.find(pfn)
        self.stats.last_find_visits = self._backend.stats.last_find_visits
        self.stats.find_visits += self.stats.last_find_visits
        if rng in self._cached_ranges:
            raise IovaNotFoundError(f"pfn {pfn} falls in a cached (free) range")
        return rng

    # -- free ---------------------------------------------------------------

    def free(self, rng: IovaRange) -> None:
        """Push the range onto its size-class magazine in O(1)."""
        if rng in self._cached_ranges:
            raise IovaNotFoundError(f"range {rng} already freed")
        # Validate it is actually resident (cheap sanity check, still O(log n)
        # in the backend but charged as a free visit only in tests).
        self.stats.frees += 1
        magazine = self._magazines.setdefault(rng.pages, [])
        if len(magazine) >= self.max_cached_per_size:
            # Magazine overflow: genuinely release to the tree.
            self._backend.free(rng)
            self.stats.last_free_visits = self._backend.stats.last_free_visits
            self.stats.free_visits += self.stats.last_free_visits
            return
        magazine.append(rng)
        self._cached_ranges.add(rng)
        self.stats.last_free_visits = 0

    def live_count(self) -> int:
        """Ranges that are allocated and not sitting in a magazine."""
        return len(self._backend.tree) - len(self._cached_ranges)

    @property
    def cached_count(self) -> int:
        """Number of freed ranges currently cached in magazines."""
        return len(self._cached_ranges)

    @property
    def resident_count(self) -> int:
        """Total ranges resident in the tree (live + cached)."""
        return len(self._backend.tree)
