"""A red-black interval tree of allocated IOVA ranges.

This mirrors the rbtree the Linux ``iova`` allocator keeps per IOMMU
domain (keyed by ``pfn_hi``), including predecessor iteration, which the
allocation algorithm uses to walk gaps top-down.  Node visits are
counted so the cycle model can charge for real traversal work.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.iova.base import IovaRange

RED = 0
BLACK = 1


class RBNode:
    """One allocated IOVA range inside the tree."""

    __slots__ = ("rng", "key", "color", "left", "right", "parent")

    def __init__(self, rng: IovaRange) -> None:
        self.rng = rng
        #: sort key — Linux keys the iova rbtree on ``pfn_hi``.  Stored
        #: rather than computed: ranges never change once inserted, and
        #: comparisons during descent dominate insert cost.
        self.key = rng.pfn_hi
        self.color = RED
        self.left: Optional["RBNode"] = None
        self.right: Optional["RBNode"] = None
        self.parent: Optional["RBNode"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        color = "R" if self.color == RED else "B"
        return f"RBNode([{self.rng.pfn_lo},{self.rng.pfn_hi}] {color})"


class RBTree:
    """Red-black tree of :class:`IovaRange` keyed by ``pfn_hi``.

    Standard CLRS implementation with parent pointers (no sentinel; the
    fix-up routines handle ``None`` children as black).  ``visits``
    counts nodes touched by searches and descents.
    """

    def __init__(self) -> None:
        self.root: Optional[RBNode] = None
        self.size = 0
        self.visits = 0

    # -- queries -----------------------------------------------------------

    def rightmost(self) -> Optional[RBNode]:
        """Node with the largest key (highest range)."""
        node = self.root
        while node is not None and node.right is not None:
            self.visits += 1
            node = node.right
        if node is not None:
            self.visits += 1
        return node

    def leftmost(self) -> Optional[RBNode]:
        """Node with the smallest key (lowest range)."""
        node = self.root
        while node is not None and node.left is not None:
            self.visits += 1
            node = node.left
        if node is not None:
            self.visits += 1
        return node

    def find_containing(self, pfn: int) -> Optional[RBNode]:
        """Binary search for the node whose range contains ``pfn``."""
        node = self.root
        visits = 0
        while node is not None:
            visits += 1
            # node.key is pfn_hi; checking it first avoids loading the
            # range object on the descend-right half of the search.
            if pfn > node.key:
                node = node.right
            elif pfn < node.rng.pfn_lo:
                node = node.left
            else:
                break
        self.visits += visits
        return node

    @staticmethod
    def predecessor(node: RBNode) -> Optional[RBNode]:
        """In-order predecessor (next-lower range)."""
        if node.left is not None:
            node = node.left
            while node.right is not None:
                node = node.right
            return node
        parent = node.parent
        while parent is not None and node is parent.left:
            node, parent = parent, parent.parent
        return parent

    @staticmethod
    def successor(node: RBNode) -> Optional[RBNode]:
        """In-order successor (next-higher range)."""
        if node.right is not None:
            node = node.right
            while node.left is not None:
                node = node.left
            return node
        parent = node.parent
        while parent is not None and node is parent.right:
            node, parent = parent, parent.parent
        return parent

    def __iter__(self) -> Iterator[IovaRange]:
        node = self.leftmost()
        while node is not None:
            yield node.rng
            node = self.successor(node)

    def __len__(self) -> int:
        return self.size

    # -- insertion -----------------------------------------------------------

    def insert(self, rng: IovaRange) -> RBNode:
        """Insert a range; ranges must not overlap existing ones."""
        node = RBNode(rng)
        parent: Optional[RBNode] = None
        curr = self.root
        key = node.key
        pfn_lo = rng.pfn_lo
        pfn_hi = rng.pfn_hi
        visits = 0
        while curr is not None:
            visits += 1
            parent = curr
            # Inline of rng.overlaps(curr.rng) — this loop dominates
            # allocation time and the attribute/method dispatch shows.
            crng = curr.rng
            if pfn_lo <= crng.pfn_hi and crng.pfn_lo <= pfn_hi:
                self.visits += visits
                raise ValueError(f"range {rng} overlaps existing {crng}")
            curr = curr.left if key < curr.key else curr.right
        self.visits += visits
        node.parent = parent
        if parent is None:
            self.root = node
        elif node.key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self.size += 1
        self._insert_fixup(node)
        return node

    def _rotate_left(self, x: RBNode) -> None:
        y = x.right
        assert y is not None
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: RBNode) -> None:
        y = x.left
        assert y is not None
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: RBNode) -> None:
        while z.parent is not None and z.parent.color == RED:
            parent = z.parent
            grand = parent.parent
            assert grand is not None  # red parent implies non-root parent
            if parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color == RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is parent.right:
                        z = parent
                        self._rotate_left(z)
                    z.parent.color = BLACK  # type: ignore[union-attr]
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color == RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is parent.left:
                        z = parent
                        self._rotate_right(z)
                    z.parent.color = BLACK  # type: ignore[union-attr]
                    grand.color = RED
                    self._rotate_left(grand)
        assert self.root is not None
        self.root.color = BLACK

    # -- deletion -----------------------------------------------------------

    def delete(self, z: RBNode) -> None:
        """Remove ``z`` from the tree (CLRS delete with None-as-black)."""
        self.size -= 1
        y = z
        y_original_color = y.color
        if z.left is None:
            x, x_parent = z.right, z.parent
            self._transplant(z, z.right)
        elif z.right is None:
            x, x_parent = z.left, z.parent
            self._transplant(z, z.left)
        else:
            y = z.right
            while y.left is not None:
                y = y.left
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x_parent = y
            else:
                x_parent = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color == BLACK:
            self._delete_fixup(x, x_parent)

    def _transplant(self, u: RBNode, v: Optional[RBNode]) -> None:
        if u.parent is None:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    def _delete_fixup(self, x: Optional[RBNode], parent: Optional[RBNode]) -> None:
        def color_of(n: Optional[RBNode]) -> int:
            return BLACK if n is None else n.color

        while x is not self.root and color_of(x) == BLACK:
            if parent is None:
                break
            if x is parent.left:
                sibling = parent.right
                if color_of(sibling) == RED:
                    assert sibling is not None
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    sibling = parent.right
                if sibling is None:
                    x, parent = parent, parent.parent
                    continue
                if color_of(sibling.left) == BLACK and color_of(sibling.right) == BLACK:
                    sibling.color = RED
                    x, parent = parent, parent.parent
                else:
                    if color_of(sibling.right) == BLACK:
                        if sibling.left is not None:
                            sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = parent.right
                    assert sibling is not None
                    sibling.color = parent.color
                    parent.color = BLACK
                    if sibling.right is not None:
                        sibling.right.color = BLACK
                    self._rotate_left(parent)
                    x = self.root
                    parent = None
            else:
                sibling = parent.left
                if color_of(sibling) == RED:
                    assert sibling is not None
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    sibling = parent.left
                if sibling is None:
                    x, parent = parent, parent.parent
                    continue
                if color_of(sibling.left) == BLACK and color_of(sibling.right) == BLACK:
                    sibling.color = RED
                    x, parent = parent, parent.parent
                else:
                    if color_of(sibling.left) == BLACK:
                        if sibling.right is not None:
                            sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = parent.left
                    assert sibling is not None
                    sibling.color = parent.color
                    parent.color = BLACK
                    if sibling.left is not None:
                        sibling.left.color = BLACK
                    self._rotate_right(parent)
                    x = self.root
                    parent = None
        if x is not None:
            x.color = BLACK

    # -- validation (for property tests) -------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any red-black invariant is violated."""
        if self.root is None:
            return
        assert self.root.color == BLACK, "root must be black"

        def walk(node: Optional[RBNode]) -> int:
            if node is None:
                return 1  # nil nodes are black
            if node.color == RED:
                assert (
                    (node.left is None or node.left.color == BLACK)
                    and (node.right is None or node.right.color == BLACK)
                ), "red node has a red child"
            if node.left is not None:
                assert node.left.parent is node, "broken parent link"
                assert node.left.key < node.key, "BST order violated"
            if node.right is not None:
                assert node.right.parent is node, "broken parent link"
                assert node.right.key > node.key, "BST order violated"
            lh = walk(node.left)
            rh = walk(node.right)
            assert lh == rh, "black heights differ"
            return lh + (1 if node.color == BLACK else 0)

        walk(self.root)
