"""The rIOMMU hardware logic (paper Figure 10).

``rtranslate`` is the entry point for every DMA: it locates the single
rIOTLB entry of the target ring (there is at most one per rRING by
design), re-synchronises it when the DMA moved to a new ring entry
(ideally from the prefetched ``next`` rPTE), validates direction and
offset, and produces the physical address.

Because each ring owns exactly one rIOTLB entry, every new translation
*implicitly* invalidates the previous one — which is why the software
driver only needs an explicit invalidation at the end of a burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.structures import (
    MAX_OFFSET,
    MAX_RENTRY,
    MAX_RID,
    OFFSET_BITS,
    RENTRY_BITS,
    RPTE_BYTES,
    RDevice,
    RIotlbEntry,
    RIova,
    RPte,
)
from repro.dma import DmaDirection
from repro.faults import BoundsFault, ContextFault, PermissionFault, TranslationFault
from repro.obs.tracer import TRACE


@dataclass
class RIotlbStats:
    """rIOTLB behaviour counters."""

    translations: int = 0
    #: rIOTLB lookups that found the ring's entry
    hits: int = 0
    #: lookups that found no entry for the ring (cold / post-invalidation)
    misses: int = 0
    #: entry syncs satisfied by the prefetched ``next`` rPTE
    prefetch_hits: int = 0
    #: entry syncs that had to walk the flat table
    sync_walks: int = 0
    #: full table walks (miss path)
    walks: int = 0
    invalidations: int = 0
    #: translations served by an entry whose backing rPTE was torn down
    stale_hits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.translations = 0
        self.hits = 0
        self.misses = 0
        self.prefetch_hits = 0
        self.sync_walks = 0
        self.walks = 0
        self.invalidations = 0
        self.stale_hits = 0


class RIotlb:
    """The rIOTLB: at most one entry per (bdf, rid)."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], RIotlbEntry] = {}
        self.stats = RIotlbStats()

    def find(self, bdf: int, rid: int) -> Optional[RIotlbEntry]:
        """``riotlb_find`` — the ring's single entry, or None."""
        return self._entries.get((bdf, rid))

    def insert(self, entry: RIotlbEntry) -> None:
        """``riotlb_insert`` — replaces any previous entry for the ring."""
        self._entries[(entry.bdf, entry.rid)] = entry

    def invalidate(self, bdf: int, rid: int) -> bool:
        """``riotlb_invalidate`` — drop the ring's entry; True if present."""
        self.stats.invalidations += 1
        if TRACE.active:
            TRACE.emit("invalidate", kind="ring", bdf=bdf, rid=rid)
        return self._entries.pop((bdf, rid), None) is not None

    def mark_backing_invalid(self, bdf: int, rid: int, rentry: int) -> None:
        """Note that a cached entry's backing rPTE was torn down.

        Called by the OS driver when it clears an rPTE's valid bit: if
        the ring's single entry currently caches exactly that
        ``rentry``, any translation it serves before invalidation or
        implicit replacement is a *stale* serve (counted by
        ``stats.stale_hits`` and emitted as ``iotlb_stale``).
        """
        entry = self._entries.get((bdf, rid))
        if entry is not None and entry.rentry == rentry:
            entry.backing_valid = False

    def invalidate_device(self, bdf: int) -> int:
        """Drop all entries of one device (device teardown)."""
        keys = [k for k in self._entries if k[0] == bdf]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def __len__(self) -> int:
        return len(self._entries)

    def entries_for_ring(self, bdf: int, rid: int) -> int:
        """0 or 1 — the invariant the design rests on."""
        return 1 if (bdf, rid) in self._entries else 0


class RIommuHardware:
    """The rIOMMU datapath: Figure 10's four routines.

    When constructed with a memory system and coherency domain, the
    requester-ID lookup goes through real memory-backed root/context
    tables (the paper's Figure 2, with the context entry pointing at the
    rDEVICE array instead of a radix root); stand-alone construction
    falls back to a plain registry, which is convenient for unit tests.
    """

    def __init__(self, mem=None, coherency=None, prefetch_enabled: bool = True) -> None:
        self.riotlb = RIotlb()
        self._devices: Dict[int, RDevice] = {}
        self._devices_by_table: Dict[int, RDevice] = {}
        #: the paper notes the design "works just as well without"
        #: prefetching (§4); disabling it is an ablation knob.
        self.prefetch_enabled = prefetch_enabled
        self.contexts = None
        if mem is not None and coherency is not None:
            from repro.iommu.context import ContextTables

            self.contexts = ContextTables(mem, coherency)

    # -- OS side -------------------------------------------------------------

    def attach_device(self, device: RDevice) -> None:
        """Register a device's rDEVICE structure via the context tables."""
        self._devices[device.bdf] = device
        self._devices_by_table[device.table_addr] = device
        if self.contexts is not None:
            self.contexts.attach(device.bdf, device.table_addr)

    def detach_device(self, bdf: int) -> None:
        """Remove a device and flush its rIOTLB entries."""
        device = self._devices.pop(bdf, None)
        if device is not None:
            self._devices_by_table.pop(device.table_addr, None)
        if self.contexts is not None and device is not None:
            self.contexts.detach(bdf)
        self.riotlb.invalidate_device(bdf)

    def get_domain(self, bdf: int) -> RDevice:
        """``get_domain`` — the rDEVICE for a requester ID.

        With context tables present this is a hardware lookup: two
        memory reads resolving bus then devfn, exactly like the baseline
        IOMMU's Figure 2 path.
        """
        if self.contexts is not None:
            table_addr = self.contexts.lookup(bdf)  # raises ContextFault
            device = self._devices_by_table.get(table_addr)
            if device is None:
                raise ContextFault(
                    f"context entry for bdf {bdf:#06x} points at unknown rDEVICE",
                    bdf=bdf,
                )
            return device
        device = self._devices.get(bdf)
        if device is None:
            raise ContextFault(f"no rDEVICE for bdf {bdf:#06x}", bdf=bdf)
        return device

    # -- hardware memory reads --------------------------------------------------

    @staticmethod
    def _hardware_read_rpte(device: RDevice, table_addr: int, rentry: int) -> RPte:
        """Walker load of one rPTE from the flat table in memory."""
        addr = table_addr + rentry * RPTE_BYTES
        device.coherency.hardware_read(addr, RPTE_BYTES)
        return RPte.decode(device.mem.ram.read(addr, RPTE_BYTES))

    # -- hardware routines (Figure 10) --------------------------------------

    def rtranslate(self, bdf: int, iova: RIova, direction: DmaDirection) -> int:
        """Translate a rIOVA to a physical address, or raise an IOPF."""
        riotlb = self.riotlb
        stats = riotlb.stats
        stats.translations += 1
        if TRACE.active:
            TRACE.emit(
                "translate", layer="riommu", bdf=bdf, rid=iova.rid, rentry=iova.rentry
            )
        entry = riotlb.find(bdf, iova.rid)
        if entry is None:
            stats.misses += 1
            if TRACE.active:
                TRACE.emit("iotlb_miss", layer="riommu", bdf=bdf, rid=iova.rid)
            entry = self.rtable_walk(bdf, iova)
            riotlb.insert(entry)
        else:
            stats.hits += 1
            if TRACE.active:
                TRACE.emit("iotlb_hit", layer="riommu", bdf=bdf, rid=iova.rid)
            if entry.rentry != iova.rentry:
                entry = self.riotlb_entry_sync(bdf, iova, entry)
                riotlb.insert(entry)
            elif not entry.backing_valid:
                # The entry still answers for an rPTE the OS already
                # tore down — a DMA is being served through a stale
                # translation (the §3.2 vulnerability made concrete).
                stats.stale_hits += 1
                if TRACE.active:
                    TRACE.emit(
                        "iotlb_stale",
                        layer="riommu",
                        bdf=bdf,
                        rid=iova.rid,
                        rentry=iova.rentry,
                    )
        rpte = entry.rpte
        offset = iova.offset
        if offset >= rpte.size or not rpte.direction.permits(direction):
            self._io_page_fault(bdf, iova, entry, direction)
        return rpte.phys_addr + offset

    def rtranslate_span(
        self, bdf: int, packed: int, size: int, direction: DmaDirection
    ) -> int:
        """Translate a packed rIOVA and bounds-check ``size`` bytes.

        Bit-identical to :meth:`rtranslate` on the start offset followed
        (for ``size > 1``) by a second call on the last byte's offset —
        but the common case (tracer off, the ring's entry cached and
        current, access in bounds) is folded into one lookup with both
        calls' counter updates applied at once.  Anything else — cold
        entry, entry sync, stale trace emission, any fault — re-runs the
        exact scalar pair.
        """
        rid = (packed >> (OFFSET_BITS + RENTRY_BITS)) & MAX_RID
        rentry = (packed >> OFFSET_BITS) & MAX_RENTRY
        offset = packed & MAX_OFFSET
        entry = self.riotlb._entries.get((bdf, rid))
        hot = entry is not None and entry.rentry == rentry and not TRACE.active
        if hot:
            rpte = entry.rpte
            end = offset + size - 1 if size > 1 else offset
            dv = int(rpte.direction)
            av = int(direction)
            if end < rpte.size and (dv & av) != 0 and (av & ~dv) == 0:
                stats = self.riotlb.stats
                n = 2 if size > 1 else 1
                stats.translations += n
                stats.hits += n
                if not entry.backing_valid:
                    stats.stale_hits += n
                return rpte.phys_addr + offset
        iova = RIova(offset=offset, rentry=rentry, rid=rid)
        phys = self.rtranslate(bdf, iova, direction)
        if size > 1:
            self.rtranslate(bdf, iova.with_offset(offset + size - 1), direction)
        return phys

    def rtable_walk(self, bdf: int, iova: RIova) -> RIotlbEntry:
        """Validate the rIOVA against the structures and fetch its rPTE.

        Every read — the rRING descriptor in the rDEVICE array and the
        rPTE in the flat table — is a hardware memory access through the
        coherency domain.
        """
        device = self.get_domain(bdf)
        if iova.rid >= device.size:
            raise TranslationFault(
                f"rid {iova.rid} out of range for bdf {bdf:#06x}",
                bdf=bdf,
                iova=iova.packed(),
            )
        table_addr, ring_size = device.hardware_ring_descriptor(iova.rid)
        if iova.rentry >= ring_size:
            raise TranslationFault(
                f"rentry {iova.rentry} out of range for ring {iova.rid}",
                bdf=bdf,
                iova=iova.packed(),
            )
        rpte = self._hardware_read_rpte(device, table_addr, iova.rentry)
        if not rpte.valid:
            raise TranslationFault(
                f"rPTE {iova.rid}/{iova.rentry} is invalid",
                bdf=bdf,
                iova=iova.packed(),
            )
        self.riotlb.stats.walks += 1
        entry = RIotlbEntry(
            bdf=bdf, rid=iova.rid, rentry=iova.rentry, rpte=rpte.copy()
        )
        self.rprefetch(device, entry)
        return entry

    def riotlb_entry_sync(
        self, bdf: int, iova: RIova, entry: RIotlbEntry
    ) -> RIotlbEntry:
        """Advance the ring's entry to the rIOVA's rPTE.

        In the common sequential case the prefetched ``next`` rPTE is
        exactly what is needed; otherwise fall back to a table walk
        (this is the only cost of out-of-order access — paper §4).
        """
        device = self.get_domain(bdf)
        _table_addr, ring_size = device.hardware_ring_descriptor(entry.rid)
        next_rentry = (entry.rentry + 1) % ring_size
        if entry.next is not None and entry.next.valid and iova.rentry == next_rentry:
            self.riotlb.stats.prefetch_hits += 1
            entry.rpte = entry.next
            entry.rentry = next_rentry
            entry.next = None
            entry.backing_valid = True
        else:
            self.riotlb.stats.sync_walks += 1
            entry = self.rtable_walk(bdf, iova)
        self.rprefetch(device, entry)
        return entry

    def rprefetch(self, device: RDevice, entry: RIotlbEntry) -> None:
        """Opportunistically copy the subsequent rPTE into ``entry.next``.

        The paper notes prefetch can be asynchronous and that the design
        works without it; it only matters in sub-microsecond user-level
        I/O setups (§5.3).
        """
        if not self.prefetch_enabled:
            return
        table_addr, ring_size = device.hardware_ring_descriptor(entry.rid)
        if ring_size <= 1:
            return
        next_rentry = (entry.rentry + 1) % ring_size
        rpte = self._hardware_read_rpte(device, table_addr, next_rentry)
        if rpte.valid:
            entry.next = rpte.copy()

    # -- fault helper -----------------------------------------------------------

    @staticmethod
    def _io_page_fault(
        bdf: int, iova: RIova, entry: RIotlbEntry, direction: DmaDirection
    ) -> None:
        if iova.offset >= entry.rpte.size:
            raise BoundsFault(
                f"offset {iova.offset} >= mapped size {entry.rpte.size} "
                f"(ring {iova.rid} entry {iova.rentry})",
                bdf=bdf,
                iova=iova.packed(),
            )
        raise PermissionFault(
            f"direction {direction!r} not permitted by rPTE "
            f"({entry.rpte.direction!r}) at ring {iova.rid} entry {iova.rentry}",
            bdf=bdf,
            iova=iova.packed(),
        )
