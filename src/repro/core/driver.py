"""The rIOMMU OS driver (paper Figure 11): map, unmap, sync_mem.

Mapping is two integer increments plus an rPTE store; unmapping is a
valid-bit clear plus a decrement; IOVA values are just (ring, index)
pairs packed into 64 bits, so there is no allocator data structure at
all.  The rIOTLB is explicitly invalidated only when the caller flags
the end of a completion burst.

Costs are charged to the same Table 1 component taxonomy as the
baseline driver, so Figure 7's stacked bars compare like with like.
"""

from __future__ import annotations

import warnings
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

from repro import datapath as _datapath
from repro.core.riotlb import RIommuHardware
from repro.core.structures import (
    MAX_RENTRY,
    MAX_RID,
    MAX_RPTE_SIZE,
    OFFSET_BITS,
    RENTRY_BITS,
    RDevice,
    RIova,
    RPte,
    RPTE_BYTES,
    _RPTE_STRUCT,
    pack_iova,
    unpack_iova,
)
from repro.dma import (
    DmaDirection,
    MapRequest,
    MapResult,
    UnmapRequest,
    UnmapResult,
    _map_result,
    _unmap_result,
)
from repro.memory.coherency import CoherencyDomain
from repro.memory.physical import MemorySystem
from repro.modes import Mode
from repro.obs.tracer import TRACE
from repro.perf.costs import CostModel
from repro.perf.cycles import Component, CycleAccount


class RingOverflowError(RuntimeError):
    """The flat table is full (``nmapped == size``) — caller must slow down.

    The paper treats overflow as legal back-pressure, exactly like a
    full device ring: the driver retries after completions free entries.
    """


class RIommuMapping(tuple):
    """Driver-side record of one live rIOVA mapping.

    Tuple-backed: two are created per packet on the rIOMMU map path,
    and the C-level tuple constructor beats a dataclass ``__init__``.
    """

    __slots__ = ()

    def __new__(
        cls, iova: RIova, phys_addr: int, size: int, direction: DmaDirection
    ) -> "RIommuMapping":
        return tuple.__new__(cls, (iova, phys_addr, size, direction))

    def __getnewargs__(self):
        # Pickle support for the custom positional __new__ (simulation
        # checkpoints serialise the driver's live-mapping records).
        return tuple(self)

    iova: RIova = property(itemgetter(0))
    phys_addr: int = property(itemgetter(1))
    size: int = property(itemgetter(2))
    direction: DmaDirection = property(itemgetter(3))


class RIommuDriver:
    """Per-device rIOMMU driver managing one rDEVICE's flat tables."""

    def __init__(
        self,
        mem: MemorySystem,
        hardware: RIommuHardware,
        bdf: int,
        mode: Mode = Mode.RIOMMU,
        coherency: Optional[CoherencyDomain] = None,
        cost_model: Optional[CostModel] = None,
        account: Optional[CycleAccount] = None,
    ) -> None:
        if not mode.is_riommu:
            raise ValueError(f"RIommuDriver does not handle mode {mode.label}")
        self.mem = mem
        self.hardware = hardware
        self.bdf = bdf
        self.mode = mode
        self.coherency = (
            coherency
            if coherency is not None
            else CoherencyDomain(coherent=mode.coherent_walk)
        )
        self.cost_model = cost_model if cost_model is not None else CostModel(mode)
        self.account = (
            account if account is not None else CycleAccount(label="riommu-driver")
        )

        # The rIOMMU costs are primitive-composed constants under *both*
        # cost policies (the paper's own simulation composes them the
        # same way), so the hot map/unmap paths always stage
        # pre-computed charges for bulk folding by the account.
        cm = self.cost_model
        self._staged_costs = (
            cm.riommu_map_alloc(),
            cm.riommu_map_pt(),
            cm.riommu_map_other(),
            cm.riommu_unmap_pt(),
            cm.riommu_unmap_free(),
            cm.riotlb_invalidate(),
            cm.riommu_unmap_other(),
        )

        self.device = RDevice(mem, self.coherency, bdf)
        hardware.attach_device(self.device)
        self._live: Dict[Tuple[int, int], RIommuMapping] = {}
        self.maps = 0
        self.unmaps = 0
        self.invalidations = 0

    # -- ring management ----------------------------------------------------

    def create_ring(self, size: int) -> int:
        """Create a flat table of ``size`` entries; returns its ring ID.

        Device drivers create two rRINGs per device ring: one for the
        descriptor-ring pages themselves (mapped once at init) and one
        for the per-DMA target buffers (paper §4, Data Structures).
        """
        return self.device.add_ring(size)

    # -- map (Figure 11, left) -------------------------------------------------

    def map(
        self, rid: int, phys_addr: int, size: int, direction: DmaDirection
    ) -> RIova:
        """Deprecated positional form of :meth:`map_request`."""
        warnings.warn(
            "RIommuDriver.map(rid, phys, size, dir) is deprecated; use "
            "map_request(MapRequest(phys_addr=..., size=..., direction=..., "
            "ring=rid))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._map(rid, phys_addr, size, direction)

    def map_request(self, req: MapRequest) -> MapResult:
        """Map ``[phys_addr, phys_addr + size)`` into ring ``req.ring``.

        The result's ``device_addr`` is the packed rIOVA with offset 0;
        callers may adjust the offset up to ``size - 1``.  Raises
        :class:`RingOverflowError` when the flat table has no free
        entry.
        """
        phys_addr, size, direction, ring = req
        if ring is None:
            raise ValueError("rIOMMU mappings need a ring ID (create_ring first)")
        if _datapath.COLUMNAR_ENABLED and not TRACE.active:
            return _map_result(self._map_fast(ring, phys_addr, size, direction), ring)
        iova = self._map(ring, phys_addr, size, direction)
        return _map_result(iova.packed(), ring)

    def _map_fast(
        self, rid: int, phys_addr: int, size: int, direction: DmaDirection
    ) -> int:
        """Observer-free :meth:`_map`: same state transitions, memory
        writes, staged charges, and error messages, but the rPTE is
        packed straight to wire format (our encodes are canonical, so
        this is bit-identical to ``RPte(...).encode()``) and the packed
        rIOVA is computed without intermediate objects."""
        if size <= 0:
            raise ValueError("size must be positive")
        if size > MAX_RPTE_SIZE:
            raise ValueError(f"size {size} exceeds the u30 rPTE size field")
        ring = self.device.ring(rid)
        if ring.nmapped == ring.size:
            raise RingOverflowError(
                f"ring {rid} of bdf {self.bdf:#06x} is full ({ring.size} entries)"
            )
        live = self._live
        rentry = ring.tail
        key = (rid, rentry)
        if key in live:
            raise RingOverflowError(
                f"ring {rid} tail entry {ring.tail} is still mapped "
                "(out-of-order unmaps left the ring fragmented)"
            )
        ring.tail = (rentry + 1) % ring.size
        ring.nmapped += 1
        account = self.account
        costs = self._staged_costs
        account.stage(Component.IOVA_ALLOC, costs[0])

        entry_addr = ring.table_addr + rentry * RPTE_BYTES
        ring.mem.ram.write(
            entry_addr,
            _RPTE_STRUCT.pack(
                phys_addr & 0xFFFF_FFFF_FFFF_FFFF,
                size | (int(direction) << 30) | (1 << 32),
            ),
        )
        coherency = self.coherency
        coherency.cpu_write(entry_addr, RPTE_BYTES)
        coherency.sync_mem(entry_addr, RPTE_BYTES)
        account.stage(Component.MAP_PAGE_TABLE, costs[1])

        account.stage(Component.MAP_OTHER, costs[2])
        live[key] = RIommuMapping(
            RIova(offset=0, rentry=rentry, rid=rid), phys_addr, size, direction
        )
        self.maps += 1
        return (rentry << OFFSET_BITS) | (rid << (OFFSET_BITS + RENTRY_BITS))

    def _map(
        self, rid: int, phys_addr: int, size: int, direction: DmaDirection
    ) -> RIova:
        if size <= 0:
            raise ValueError("size must be positive")
        if size > MAX_RPTE_SIZE:
            raise ValueError(f"size {size} exceeds the u30 rPTE size field")
        ring = self.device.ring(rid)

        # "locked { ... }": allocate the tail entry.
        if ring.nmapped == ring.size:
            raise RingOverflowError(
                f"ring {rid} of bdf {self.bdf:#06x} is full ({ring.size} entries)"
            )
        if (rid, ring.tail) in self._live:
            # Ring semantics promise FIFO unmap order; callers that unmap
            # out of order can leave the tail entry live even though the
            # table is not full.  Refusing (back-pressure) is safe —
            # overwriting a live rPTE would not be.
            raise RingOverflowError(
                f"ring {rid} tail entry {ring.tail} is still mapped "
                "(out-of-order unmaps left the ring fragmented)"
            )
        rentry = ring.tail
        ring.tail = (ring.tail + 1) % ring.size
        ring.nmapped += 1
        account = self.account
        costs = self._staged_costs
        account.stage(Component.IOVA_ALLOC, costs[0])

        # Initialise the rPTE, then make it visible to the walker.
        pte = RPte(phys_addr=phys_addr, size=size, direction=direction, valid=True)
        entry_addr = ring.write_pte(rentry, pte)
        self.coherency.sync_mem(entry_addr, 16)
        account.stage(Component.MAP_PAGE_TABLE, costs[1])

        account.stage(Component.MAP_OTHER, costs[2])
        iova = RIova(offset=0, rentry=rentry, rid=rid)
        self._live[(rid, rentry)] = RIommuMapping(iova, phys_addr, size, direction)
        self.maps += 1
        if TRACE.active:
            TRACE.emit(
                "map",
                layer="riommu",
                bdf=self.bdf,
                rid=rid,
                rentry=rentry,
                phys_addr=phys_addr,
                size=size,
            )
        return iova

    # -- unmap (Figure 11, right) --------------------------------------------------

    def unmap(self, iova: RIova, end_of_burst: bool = False) -> int:
        """Deprecated positional form of :meth:`unmap_request`."""
        warnings.warn(
            "RIommuDriver.unmap(iova, end_of_burst) is deprecated; use "
            "unmap_request(UnmapRequest(device_addr=iova.packed()))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._unmap(iova, end_of_burst)

    def unmap_request(self, req: UnmapRequest) -> UnmapResult:
        """Invalidate the rPTE behind the packed rIOVA ``req.device_addr``.

        ``end_of_burst=True`` additionally invalidates the ring's single
        rIOTLB entry — one invalidation per completion burst is all the
        design ever needs.
        """
        device_addr, end_of_burst = req
        iova = unpack_iova(device_addr)
        # The mapping is keyed by (rid, rentry); the offset is free for
        # the caller to have adjusted, so normalise it away.
        phys = self._unmap(
            RIova(offset=0, rentry=iova.rentry, rid=iova.rid), end_of_burst
        )
        return _unmap_result(phys)

    def _unmap(self, iova: RIova, end_of_burst: bool) -> int:
        ring = self.device.ring(iova.rid)
        mapping = self._live.pop((iova.rid, iova.rentry), None)
        if mapping is None:
            raise KeyError(
                f"ring {iova.rid} entry {iova.rentry} is not a live mapping"
            )

        # Clear the valid bit and publish the change.
        pte = ring.read_pte(iova.rentry)
        pte.valid = False
        entry_addr = ring.write_pte(iova.rentry, pte)
        account = self.account
        costs = self._staged_costs
        account.stage(Component.UNMAP_PAGE_TABLE, costs[3])

        # "locked { r.nmapped--; }" — the whole of IOVA deallocation.
        ring.nmapped -= 1
        account.stage(Component.IOVA_FREE, costs[4])

        self.coherency.sync_mem(entry_addr, 16)
        # The rPTE is now invalid in memory; a cached rIOTLB copy of this
        # entry no longer matches its backing — flag it so the hardware
        # model (and the protection auditor) can spot stale serves.
        self.hardware.riotlb.mark_backing_invalid(self.bdf, iova.rid, iova.rentry)

        if end_of_burst:
            self.hardware.riotlb.invalidate(self.bdf, iova.rid)
            self.invalidations += 1
            account.stage(Component.IOTLB_INV, costs[5])

        account.stage(Component.UNMAP_OTHER, costs[6])
        self.unmaps += 1
        if TRACE.active:
            TRACE.emit(
                "unmap",
                layer="riommu",
                bdf=self.bdf,
                rid=iova.rid,
                rentry=iova.rentry,
                phys_addr=mapping.phys_addr,
                end_of_burst=end_of_burst,
            )
        return mapping.phys_addr

    def unmap_burst(
        self, device_addrs: Sequence[int], end_of_burst: bool = True
    ) -> List[int]:
        """Unmap a completion burst; returns the physical addresses.

        Semantically a loop of :meth:`unmap_request` calls with
        ``end_of_burst`` on the last — and that is what runs when a
        tracer is active or the columnar build is off.  The columnar
        body does the per-item real work (valid-bit clear, publish,
        ``nmapped`` decrement, stale flagging) in the same order but
        patches the rPTE bytes in place and stages each Table 1
        component once for the whole burst with an exact counted fold.
        """
        if not (_datapath.COLUMNAR_ENABLED and not TRACE.active):
            last = len(device_addrs) - 1
            return [
                self._unmap(
                    RIova(
                        offset=0,
                        rentry=(addr >> OFFSET_BITS) & MAX_RENTRY,
                        rid=(addr >> (OFFSET_BITS + RENTRY_BITS)) & MAX_RID,
                    ),
                    end_of_burst and i == last,
                )
                for i, addr in enumerate(device_addrs)
            ]

        live = self._live
        riotlb = self.hardware.riotlb
        bdf = self.bdf
        rings = self.device.rings
        phys_addrs: List[int] = []
        last = len(device_addrs) - 1
        done = 0
        invalidated = False
        try:
            for i, addr in enumerate(device_addrs):
                rid = (addr >> (OFFSET_BITS + RENTRY_BITS)) & MAX_RID
                rentry = (addr >> OFFSET_BITS) & MAX_RENTRY
                if not 0 <= rid < len(rings):
                    raise IndexError(f"rid {rid} out of range [0, {len(rings)})")
                ring = rings[rid]
                mapping = live.pop((rid, rentry), None)
                if mapping is None:
                    raise KeyError(
                        f"ring {rid} entry {rentry} is not a live mapping"
                    )

                # Clear the valid bit (word1 bit 32 = byte 12 bit 0) in
                # place.  Our own encodes are canonical, so this equals
                # the scalar decode → valid=False → encode round-trip.
                ram = ring.mem.ram
                entry_addr = ring.table_addr + rentry * RPTE_BYTES
                raw = ram.read(entry_addr, RPTE_BYTES)
                ram.write(
                    entry_addr, raw[:12] + bytes((raw[12] & 0xFE,)) + raw[13:]
                )
                coherency = ring.coherency
                coherency.cpu_write(entry_addr, RPTE_BYTES)
                ring.nmapped -= 1
                coherency.sync_mem(entry_addr, RPTE_BYTES)
                riotlb.mark_backing_invalid(bdf, rid, rentry)
                if end_of_burst and i == last:
                    riotlb.invalidate(bdf, rid)
                    self.invalidations += 1
                    invalidated = True
                phys_addrs.append(mapping.phys_addr)
                done += 1
        finally:
            if done:
                account = self.account
                costs = self._staged_costs
                account.stage_many(Component.UNMAP_PAGE_TABLE, costs[3], done)
                account.stage_many(Component.IOVA_FREE, costs[4], done)
                if done == 1:
                    # scalar first-touch order: ... INV before OTHER
                    if invalidated:
                        account.stage(Component.IOTLB_INV, costs[5])
                    account.stage(Component.UNMAP_OTHER, costs[6])
                else:
                    # OTHER first touched at item 1, INV only at item n
                    account.stage_many(Component.UNMAP_OTHER, costs[6], done)
                    if invalidated:
                        account.stage(Component.IOTLB_INV, costs[5])
                self.unmaps += done
        return phys_addrs

    # -- introspection / teardown -------------------------------------------------

    def live_mappings(self, rid: Optional[int] = None) -> int:
        """Live mappings, optionally restricted to one ring."""
        if rid is None:
            return len(self._live)
        return sum(1 for key in self._live if key[0] == rid)

    def nmapped(self, rid: int) -> int:
        """The ring's software ``nmapped`` counter."""
        return self.device.ring(rid).nmapped

    def shutdown(self) -> None:
        """Invalidate everything and detach from the hardware."""
        self._live.clear()
        self.hardware.detach_device(self.bdf)
