"""The paper's contribution: the ring IOMMU (rIOMMU)."""

from repro.core.driver import RIommuDriver, RIommuMapping, RingOverflowError
from repro.core.riotlb import RIommuHardware, RIotlb, RIotlbStats
from repro.core.structures import (
    MAX_OFFSET,
    MAX_RENTRY,
    MAX_RID,
    MAX_RPTE_SIZE,
    RDevice,
    RIotlbEntry,
    RIova,
    RPte,
    RRing,
    pack_iova,
    unpack_iova,
)

__all__ = [
    "MAX_OFFSET",
    "MAX_RENTRY",
    "MAX_RID",
    "MAX_RPTE_SIZE",
    "RDevice",
    "RIommuDriver",
    "RIommuHardware",
    "RIommuMapping",
    "RIotlb",
    "RIotlbEntry",
    "RIotlbStats",
    "RIova",
    "RPte",
    "RRing",
    "RingOverflowError",
    "pack_iova",
    "unpack_iova",
]
