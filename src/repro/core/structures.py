"""The rIOMMU data structures (paper Figure 9).

The hardware-visible structures — the per-device rRING array and the
flat rPTE tables — are real bytes in the simulated physical memory, so
the hardware walker reads exactly what the software driver wrote (with
coherency enforced in between).  The software-only fields (``tail``,
``nmapped``) live on the Python objects, as the paper notes they are
"not architected and unknown to the rIOMMU hardware".

Field widths follow Figure 9:

* rPTE    = 128 bits: phys_addr u64 | size u30 | dir u2 | valid u1
* rIOVA   =  64 bits: offset u30 | rentry u18 | rid u16
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.dma import DmaDirection
from repro.memory.coherency import CoherencyDomain
from repro.memory.physical import MemorySystem

RPTE_BYTES = 16  # 128-bit entries

OFFSET_BITS = 30
RENTRY_BITS = 18
RID_BITS = 16

MAX_OFFSET = (1 << OFFSET_BITS) - 1
MAX_RENTRY = (1 << RENTRY_BITS) - 1
MAX_RID = (1 << RID_BITS) - 1
#: maximum mapping size encodable in the u30 rPTE size field
MAX_RPTE_SIZE = (1 << 30) - 1

#: the two 64-bit little-endian words of an rPTE
_RPTE_STRUCT = struct.Struct("<QQ")

#: direction field decode table — bits 0b00 read back as BIDIRECTIONAL
#: (unencoded legacy entries), matching ``DmaDirection(bits) if bits``
_DIR_BY_BITS = (
    DmaDirection.BIDIRECTIONAL,
    DmaDirection.TO_DEVICE,
    DmaDirection.FROM_DEVICE,
    DmaDirection.BIDIRECTIONAL,
)


def pack_iova(offset: int, rentry: int, rid: int) -> int:
    """Pack the rIOVA fields into a 64-bit integer (Figure 9d)."""
    if not 0 <= offset <= MAX_OFFSET:
        raise ValueError(f"offset {offset} exceeds u30")
    if not 0 <= rentry <= MAX_RENTRY:
        raise ValueError(f"rentry {rentry} exceeds u18")
    if not 0 <= rid <= MAX_RID:
        raise ValueError(f"rid {rid} exceeds u16")
    return offset | (rentry << OFFSET_BITS) | (rid << (OFFSET_BITS + RENTRY_BITS))


def unpack_iova(iova: int) -> "RIova":
    """Split a packed 64-bit rIOVA into its fields."""
    return RIova(
        offset=iova & MAX_OFFSET,
        rentry=(iova >> OFFSET_BITS) & MAX_RENTRY,
        rid=(iova >> (OFFSET_BITS + RENTRY_BITS)) & MAX_RID,
    )


@dataclass(frozen=True)
class RIova:
    """Decoded rIOVA (Figure 9d)."""

    offset: int
    rentry: int
    rid: int

    def packed(self) -> int:
        """Re-pack into the 64-bit wire format."""
        return pack_iova(self.offset, self.rentry, self.rid)

    def with_offset(self, offset: int) -> "RIova":
        """Same ring entry, different offset (callers may adjust offsets
        freely within the mapped size — paper §4, map return value)."""
        return RIova(offset=offset, rentry=self.rentry, rid=self.rid)


@dataclass
class RPte:
    """Decoded flat-table entry (Figure 9c)."""

    phys_addr: int = 0
    size: int = 0
    direction: DmaDirection = DmaDirection.BIDIRECTIONAL
    valid: bool = False

    def encode(self) -> bytes:
        """Encode to the 128-bit in-memory format."""
        word0 = self.phys_addr & ((1 << 64) - 1)
        word1 = (self.size & MAX_RPTE_SIZE) | (int(self.direction) << 30) | (
            int(self.valid) << 32
        )
        return _RPTE_STRUCT.pack(word0, word1)

    @classmethod
    def decode(cls, raw: bytes) -> "RPte":
        """Decode from the 128-bit in-memory format."""
        if len(raw) != RPTE_BYTES:
            raise ValueError(f"rPTE must be {RPTE_BYTES} bytes, got {len(raw)}")
        word0, word1 = _RPTE_STRUCT.unpack(raw)
        return cls(
            phys_addr=word0,
            size=word1 & MAX_RPTE_SIZE,
            direction=_DIR_BY_BITS[(word1 >> 30) & 0x3],
            valid=bool((word1 >> 32) & 1),
        )

    def copy(self) -> "RPte":
        """Value copy (the rIOTLB holds copies, not references)."""
        return RPte(self.phys_addr, self.size, self.direction, self.valid)


class RRing:
    """One flat page table (Figure 9b): an in-memory array of rPTEs.

    ``tail`` and ``nmapped`` are the software-only fields the driver
    uses; the hardware only ever reads the rPTE array itself.
    """

    def __init__(self, mem: MemorySystem, coherency: CoherencyDomain, size: int) -> None:
        if not 1 <= size <= MAX_RENTRY + 1:
            raise ValueError(f"ring size must be in [1, {MAX_RENTRY + 1}], got {size}")
        self.mem = mem
        self.coherency = coherency
        self.size = size
        self.table_addr = mem.allocator.alloc_buffer(size * RPTE_BYTES)
        mem.allocator.pin(self.table_addr, size * RPTE_BYTES)
        # software-only:
        self.tail = 0
        self.nmapped = 0

    def entry_addr(self, rentry: int) -> int:
        """Physical address of rPTE number ``rentry``."""
        if not 0 <= rentry < self.size:
            raise IndexError(f"rentry {rentry} out of range [0, {self.size})")
        return self.table_addr + rentry * RPTE_BYTES

    # -- software (driver) access ------------------------------------------

    def write_pte(self, rentry: int, pte: RPte) -> int:
        """CPU-side store of an rPTE; returns the entry address for sync."""
        addr = self.entry_addr(rentry)
        self.mem.ram.write(addr, pte.encode())
        self.coherency.cpu_write(addr, RPTE_BYTES)
        return addr

    def read_pte(self, rentry: int) -> RPte:
        """CPU-side load of an rPTE (driver's own view)."""
        return RPte.decode(self.mem.ram.read(self.entry_addr(rentry), RPTE_BYTES))

    # -- hardware (walker) access ----------------------------------------------

    def hardware_read_pte(self, rentry: int) -> RPte:
        """Walker load of an rPTE; checks coherency."""
        addr = self.entry_addr(rentry)
        self.coherency.hardware_read(addr, RPTE_BYTES)
        return RPte.decode(self.mem.ram.read(addr, RPTE_BYTES))


#: bytes per rRING descriptor in the memory-resident rDEVICE array
RRING_ENTRY_BYTES = 16
#: rRING descriptors per rDEVICE page
RDEVICE_CAPACITY = 4096 // RRING_ENTRY_BYTES


class RDevice:
    """Per-device array of rRINGs (Figure 9a) — the rIOMMU's "root table".

    The array is memory-resident: each 16-byte entry holds the flat
    table's physical address and size, written by the OS at ring-setup
    time and read by the hardware walker (through the coherency domain)
    on every table walk.  The context table points here, completing the
    Figure 2 path for the rIOMMU.
    """

    def __init__(self, mem: MemorySystem, coherency: CoherencyDomain, bdf: int) -> None:
        self.mem = mem
        self.coherency = coherency
        self.bdf = bdf
        self.rings: List[RRing] = []
        #: physical address of the memory-resident rRING-descriptor array
        self.table_addr = mem.allocator.alloc_page()
        mem.allocator.pin(self.table_addr)

    @property
    def size(self) -> int:
        """Number of rRINGs."""
        return len(self.rings)

    def add_ring(self, size: int) -> int:
        """Create a flat table of ``size`` entries; returns its ring ID.

        Writes the new rRING's descriptor (table address + size) into
        the rDEVICE array and publishes it to the walker — a rare,
        init-time update, unlike the per-DMA rPTE churn.
        """
        if len(self.rings) >= min(MAX_RID + 1, RDEVICE_CAPACITY):
            raise ValueError("rDEVICE ring array is full")
        ring = RRing(self.mem, self.coherency, size)
        rid = len(self.rings)
        self.rings.append(ring)
        entry_addr = self.table_addr + rid * RRING_ENTRY_BYTES
        self.mem.ram.write_u64(entry_addr, ring.table_addr)
        self.mem.ram.write_u64(entry_addr + 8, ring.size)
        self.coherency.cpu_write(entry_addr, RRING_ENTRY_BYTES)
        self.coherency.sync_mem(entry_addr, RRING_ENTRY_BYTES)
        return rid

    def ring(self, rid: int) -> RRing:
        """The rRING with ID ``rid`` (OS-side object view)."""
        if not 0 <= rid < len(self.rings):
            raise IndexError(f"rid {rid} out of range [0, {len(self.rings)})")
        return self.rings[rid]

    def hardware_ring_descriptor(self, rid: int) -> tuple:
        """Walker read of an rRING descriptor: (table_addr, size).

        Goes through the coherency domain like every hardware access.
        """
        entry_addr = self.table_addr + rid * RRING_ENTRY_BYTES
        self.coherency.hardware_read(entry_addr, RRING_ENTRY_BYTES)
        return (
            self.mem.ram.read_u64(entry_addr),
            self.mem.ram.read_u64(entry_addr + 8),
        )


@dataclass
class RIotlbEntry:
    """One rIOTLB entry (Figure 9e) — at most one per rRING.

    ``rpte`` is a *copy* of the current rPTE; ``next`` optionally holds
    a prefetched copy of the subsequent rPTE.
    """

    bdf: int
    rid: int
    rentry: int
    rpte: RPte
    next: Optional[RPte] = None
    #: False once the OS tore down the backing rPTE while this copy was
    #: cached — a translation served in that state is a stale serve.
    backing_valid: bool = True
