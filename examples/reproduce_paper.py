#!/usr/bin/env python
"""Reproduce every table and figure of the paper's evaluation (E1-E9).

Runs the full reproduction pipeline and prints each artefact in the
paper's own layout, with the paper's printed numbers alongside where
the paper gives them.  Expect a few minutes of runtime; pass --fast for
a quicker, slightly noisier pass.

Run:  python examples/reproduce_paper.py [--fast]
"""

import argparse
import time

from repro.analysis import (
    ablate_prefetch,
    run_figure7,
    run_figure8,
    run_micro_validation,
    run_miss_penalty,
    run_passthrough,
    run_prefetcher_study,
    run_sata,
    run_table1,
    run_table3,
    sweep_alloc_pathology,
    sweep_burst_length,
    sweep_defer_threshold,
    table2_from_grid,
)
from repro.analysis.figure12 import Figure12Result
from repro.sim import run_figure12


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller runs")
    args = parser.parse_args()
    fast = args.fast
    started = time.time()

    banner("E1  Table 1 — map/unmap cycle breakdown (mlx, Netperf stream)")
    print(run_table1(packets=200 if fast else 600, warmup=50 if fast else 150).render())

    banner("E2  Figure 7 — cycles per packet by component, all modes")
    print(run_figure7(packets=200 if fast else 600, warmup=50 if fast else 150).render())

    banner("E3  Figure 8 — throughput vs cycles/packet (model validation)")
    figure8 = run_figure8(packets=150 if fast else 400, warmup=40 if fast else 100)
    print(figure8.render())
    print(f"max model-vs-busywait error: {figure8.max_model_error():.2%}")

    banner("E4  Figure 12 — both setups x five benchmarks x seven modes")
    grid = run_figure12(fast=fast)
    print(Figure12Result(grid=grid).render())

    banner("E5  Table 2 — normalised performance (measured vs paper)")
    print(table2_from_grid(grid).render())

    banner("E6  Table 3 — Netperf RR round-trip times")
    print(run_table3(transactions=80 if fast else 200, warmup=20 if fast else 40).render())

    banner("E7  Section 5.3 — IOTLB miss penalty")
    print(run_miss_penalty(sends=1500 if fast else 4000).render())

    banner("E8  Section 5.4 — TLB prefetchers vs rIOTLB")
    print(run_prefetcher_study(packets=150 if fast else 400).render())

    banner("E9  Section 4 — SATA/Bonnie++: strict vs none indistinguishable")
    print(run_sata(requests=10 if fast else 40).render())

    banner("E10 Section 5.1 — pass-through revalidation (HWpt vs SWpt)")
    print(run_passthrough(packets=150 if fast else 300).render())

    if not fast:
        banner("Ablations — design-choice sensitivity")
        print(sweep_burst_length(packets=300, warmup=60).render())
        print()
        print(sweep_defer_threshold(packets=300, warmup=60).render())
        print()
        print(ablate_prefetch(packets=300).render())
        print()
        print(sweep_alloc_pathology(requests=120).render())
        banner("MICRO validation — ordering without Table 1")
        print(run_micro_validation(packets=300, warmup=60).render())

    print(f"\nAll experiments reproduced in {time.time() - started:.0f}s.")


if __name__ == "__main__":
    main()
