#!/usr/bin/env python
"""PCIe SSD scenario: NVMe queues as rIOMMU rings (paper §4).

NVMe mandates ring-shaped submission/completion queues processed in
strict order — exactly the model the rIOMMU exploits.  This example
builds an NVMe controller over each protection backend, runs a
write-then-read workload, verifies data integrity, and compares the
per-command mapping cost.  It also shows the AHCI/SATA contrast: a
drive that completes commands out of order, where rIOMMU's assumption
does not hold (and, being slow, does not matter).

Run:  python examples/nvme_ssd.py
"""

from repro import Machine, Mode
from repro.devices import AhciCommand, AhciController, AhciOp, NvmeController
from repro.kernel import NvmeDriver

BDF = 0x0500
COMMANDS = 64
BATCH = 16


def run_nvme(mode: Mode) -> float:
    machine = Machine(mode)
    nvme = NvmeController(machine.bus, BDF)
    driver = NvmeDriver(machine, nvme, queue_entries=BATCH + 1)
    api = machine.dma_api(BDF)
    setup_cycles = api.overhead_cycles  # SQ/CQ ring mappings (one-time)

    # Write phase, batched: one rIOTLB invalidation per BATCH commands.
    for base in range(0, COMMANDS, BATCH):
        for i in range(base, base + BATCH):
            driver.submit_write(i, bytes([i]) * 64)
        driver.flush()

    # Read phase: read everything back and verify.
    for base in range(0, COMMANDS, BATCH):
        for i in range(base, base + BATCH):
            driver.submit_read(i, 1)
        for i, data in enumerate(driver.flush()):
            assert data[:64] == bytes([base + i]) * 64, "data corrupted!"

    return (api.overhead_cycles - setup_cycles) / (2 * COMMANDS)


def run_ahci_contrast() -> None:
    machine = Machine(Mode.NONE)
    ahci = AhciController(machine.bus, BDF, seed=11)
    buf = machine.mem.alloc_dma_buffer(512)
    slots = [ahci.issue(AhciCommand(AhciOp.WRITE, lba=i, sectors=1, data_addr=buf))
             for i in range(12)]
    completed = [c.slot for c in ahci.process(shuffle=True)]
    print(f"\nAHCI/SATA contrast: issued slots {slots}")
    print(f"                    completed as  {completed}")
    print("out-of-order completion breaks the strict ring order rIOMMU needs —")
    print("which is fine: SATA is too slow for IOMMU overhead to matter (§4).")


def main() -> None:
    print(f"NVMe: {COMMANDS} writes + {COMMANDS} reads, 4 KB blocks, verified\n")
    print(f"{'mode':10s} {'cycles per map+unmap pair':>28s}")
    for mode in (Mode.NONE, Mode.STRICT, Mode.DEFER_PLUS, Mode.RIOMMU_NC, Mode.RIOMMU):
        per_command = run_nvme(mode)
        print(f"{mode.label:10s} {per_command:>28,.0f}")
    run_ahci_contrast()


if __name__ == "__main__":
    main()
