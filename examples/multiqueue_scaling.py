#!/usr/bin/env python
"""Multi-queue NICs and the rIOMMU's per-ring translation state.

The paper notes NICs use multiple Rx/Tx rings per port "as different
rings can be handled concurrently by different cores" (§2.3), and the
rIOMMU's design gives each ring its own flat table and its own single
rIOTLB entry — so queues never interfere with each other's cached
translation.  This example runs 64 flows RSS-hashed across 1..8 queues
and shows that the rIOTLB prefetch-hit behaviour stays ideal no matter
how many queues are active (while the baseline's shared IOTLB has to
fit every queue's pages).

Run:  python examples/multiqueue_scaling.py
"""

from repro import Machine, Mode
from repro.devices import MLX_PROFILE, MultiQueueNic
from repro.kernel import MultiQueueNetDriver

BDF = 0x0300
FLOWS = 64
FRAMES_PER_FLOW = 20


def run(num_queues: int) -> None:
    machine = Machine(Mode.RIOMMU)
    nic = MultiQueueNic(machine.bus, BDF, MLX_PROFILE, num_queues=num_queues)
    driver = MultiQueueNetDriver(machine, nic, coalesce_threshold=64)
    driver.fill_rx()
    for _round in range(FRAMES_PER_FLOW):
        for flow in range(FLOWS):
            driver.deliver(flow, bytes([flow]) * 1200)
            while not driver.transmit(flow, bytes([255 - flow]) * 1200):
                driver.pump_and_flush()  # tx ring pressure: drain first
    driver.pump_and_flush()

    stats = machine.riommu.riotlb.stats
    served = 1.0 - stats.walks / stats.translations
    print(
        f"{num_queues:2d} queues: rx={driver.packets_received:5d} "
        f"tx={driver.packets_transmitted:5d}  "
        f"rIOTLB entries={len(machine.riommu.riotlb):3d} "
        f"(2 rings/queue/direction)  served w/o DRAM fetch={served:.3f}"
    )


def main() -> None:
    print(f"{FLOWS} flows x {FRAMES_PER_FLOW} frames each way, RSS-hashed\n")
    for num_queues in (1, 2, 4, 8):
        run(num_queues)
    print(
        "\nPer-ring rIOTLB state means adding queues never evicts another"
        "\nqueue's translation — the design scales sideways for free."
    )


if __name__ == "__main__":
    main()
