#!/usr/bin/env python
"""The §5.4 study: classic TLB prefetchers vs the rIOTLB.

Records a DMA trace from the functional NIC simulation, replays it
through Markov, Recency and Distance prefetchers — in the paper's
baseline and "remember invalidated addresses" variants, across history
sizes — and contrasts them with the rIOTLB's two-entries-per-ring
behaviour measured on the real simulated hardware.

Run:  python examples/prefetcher_study.py
"""

from repro.analysis import run_prefetcher_study


def main() -> None:
    study = run_prefetcher_study(packets=400, history_capacities=(64, 256, 1024, 4096))
    print(study.render())
    print()
    for name in ("markov", "recency", "distance"):
        baseline = study.best(name, "baseline")
        modified = study.best(name, "modified")
        print(
            f"{name:8s}: baseline coverage {baseline.stats.coverage:.2f} -> "
            f"modified coverage {modified.stats.coverage:.2f} "
            f"(history {modified.history_capacity})"
        )
    r = study.riotlb
    print(
        f"\nrIOTLB needs 2 entries/ring and served "
        f"{r.served_without_walk:.1%} of {r.translations} translations "
        f"without touching DRAM — its 'predictions' are always correct."
    )


if __name__ == "__main__":
    main()
