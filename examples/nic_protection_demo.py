#!/usr/bin/env python
"""Protection demo: what each design actually protects against.

Recreates, on a full simulated NIC stack, the three security scenarios
the paper discusses:

1. a rogue/errant device DMA to an address the OS never mapped;
2. the deferred mode's vulnerability window — a device reaching a
   buffer *after* the OS unmapped it, through a stale IOTLB entry;
3. the baseline IOMMU's page-granularity weakness vs. the rIOMMU's
   byte-granular bounds when two buffers share a page.

Run:  python examples/nic_protection_demo.py
"""

from repro import IoPageFault, NetDriver
from repro.api import DmaDirection, Machine, MapRequest, Mode, UnmapRequest
from repro.devices import MLX_PROFILE, SimulatedNic


def _map(api, phys, size, direction, ring=None):
    return api.map_request(
        MapRequest(phys_addr=phys, size=size, direction=direction, ring=ring)
    ).device_addr

BDF = 0x0300


def scenario_rogue_device() -> None:
    print("\n--- 1. rogue DMA to an unmapped address ---")
    for mode in (Mode.NONE, Mode.STRICT):
        machine = Machine(mode)
        machine.dma_api(BDF)
        target = machine.mem.alloc_dma_buffer(4096)  # e.g. kernel memory
        machine.mem.ram.write(target, b"precious kernel state")
        try:
            machine.bus.dma_write(BDF, target, b"0wned by the device!!")
            print(f"{mode.label:8s}: device overwrote kernel memory -> "
                  f"{machine.mem.ram.read(target, 21)!r}")
        except IoPageFault:
            print(f"{mode.label:8s}: DMA blocked with an I/O page fault")


def scenario_deferred_window() -> None:
    print("\n--- 2. the deferred mode's stale-IOTLB window ---")
    machine = Machine(Mode.DEFER, flush_threshold=250)
    api = machine.dma_api(BDF)
    phys = machine.mem.alloc_dma_buffer(4096)
    handle = _map(api, phys, 1500, DmaDirection.BIDIRECTIONAL)
    machine.bus.dma_write(BDF, handle, b"legitimate packet")  # warms the IOTLB
    api.unmap_request(UnmapRequest(device_addr=handle))
    print("buffer unmapped and handed back to the kernel ...")
    machine.bus.dma_write(BDF, handle, b"late DMA wins race")
    print(f"... yet the device wrote: {machine.mem.ram.read(phys, 18)!r}")
    print(f"window stays open for up to {machine.flush_threshold} unmaps "
          f"(currently {api.driver.pending_invalidations()} queued)")


def scenario_fine_grained() -> None:
    print("\n--- 3. sub-page protection: baseline vs rIOMMU ---")
    # Baseline: two 128-byte buffers share a page; while either is mapped
    # the device can reach the WHOLE page.
    machine = Machine(Mode.STRICT)
    api = machine.dma_api(BDF)
    page = machine.mem.alloc_dma_buffer(4096)
    a = _map(api, page, 128, DmaDirection.BIDIRECTIONAL)
    b = _map(api, page + 2048, 128, DmaDirection.BIDIRECTIONAL)
    api.unmap_request(UnmapRequest(device_addr=a))
    # a is gone — but its bytes are still device-reachable,
    # because b's IOVA page maps the whole shared physical page.
    machine.bus.dma_write(BDF, (b & ~0xFFF), b"A overwritten via B's page")
    print(f"baseline: unmapped buffer clobbered -> {machine.mem.ram.read(page, 26)!r}")

    machine2 = Machine(Mode.RIOMMU)
    api2 = machine2.dma_api(BDF)
    ring = api2.create_ring(8)
    page2 = machine2.mem.alloc_dma_buffer(4096)
    a2 = _map(api2, page2, 128, DmaDirection.BIDIRECTIONAL, ring=ring)
    b2 = _map(api2, page2 + 2048, 128, DmaDirection.BIDIRECTIONAL, ring=ring)
    api2.unmap_request(UnmapRequest(device_addr=a2, end_of_burst=True))
    try:
        machine2.bus.dma_write(BDF, b2 + 128, b"x")
    except IoPageFault:
        print("riommu  : access beyond the live buffer's 128 bytes faulted")


def scenario_full_stack_counters() -> None:
    print("\n--- full NIC stack under riommu: burst amortization ---")
    machine = Machine(Mode.RIOMMU)
    nic = SimulatedNic(machine.bus, BDF, MLX_PROFILE)
    driver = NetDriver(machine, nic, coalesce_threshold=200)
    driver.fill_rx()
    for i in range(600):
        nic.deliver_frame(bytes([i % 251]) * 1500)
    driver.flush_rx()
    rdrv = machine.dma_api(BDF).driver
    print(f"packets received : {driver.stats.packets_received}")
    print(f"map/unmap calls  : {rdrv.maps}/{rdrv.unmaps}")
    print(f"rIOTLB invalidations: {rdrv.invalidations} "
          f"(one per ~200-packet burst, not one per unmap)")
    stats = machine.riommu.riotlb.stats
    print(f"rIOTLB prefetch hits: {stats.prefetch_hits}/{stats.translations} "
          f"translations; cold walks: {stats.walks}")


def main() -> None:
    scenario_rogue_device()
    scenario_deferred_window()
    scenario_fine_grained()
    scenario_full_stack_counters()


if __name__ == "__main__":
    main()
