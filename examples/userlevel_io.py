#!/usr/bin/env python
"""User-level I/O: when the IOTLB miss penalty finally matters (§5.3).

Everywhere else in the paper, IOTLB misses are invisible — interrupts
and the TCP/IP stack cost tens of microseconds, a 4-reference table
walk costs half of one.  This example recreates the paper's ibverbs
experiment: raw sends with no stack and no interrupts, first from a
large pool of pre-mapped buffers chosen at random (IOTLB misses nearly
every send), then from a single buffer (IOTLB always hits).  The
difference is the miss penalty — and the rIOMMU's prefetched
next-rPTE is what removes it for ring workloads.

Run:  python examples/userlevel_io.py
"""

import random

from repro.api import DmaDirection, Machine, MapRequest, Mode
from repro.analysis.miss_penalty import DRAM_REF_CYCLES
from repro.perf import CLOCK_HZ

BDF = 0x0300
POOL = 512
SENDS = 4000


def run_pool(pool_size: int) -> tuple:
    machine = Machine(Mode.STRICT_PLUS, enforce_coherency=False)
    api = machine.dma_api(BDF)
    rng = random.Random(99)
    handles = []
    for _ in range(pool_size):
        phys = machine.mem.alloc_dma_buffer(2048)
        handles.append(
            api.map_request(
                MapRequest(
                    phys_addr=phys, size=2048, direction=DmaDirection.TO_DEVICE
                )
            ).device_addr
        )
    iommu = machine.iommu
    iommu.iotlb.stats.reset()
    iommu.stats.reset()
    for _ in range(SENDS):
        machine.bus.dma_read(BDF, rng.choice(handles), 1024)
    hit_rate = iommu.iotlb.stats.hit_rate
    walk_cycles = iommu.stats.walk_levels * DRAM_REF_CYCLES / SENDS
    return hit_rate, walk_cycles


def run_riommu_ring() -> tuple:
    """The same send count, ring-sequential, under the rIOMMU.

    As in real ring operation, descriptors are pre-posted (mapped ahead
    of use), so the walker's prefetched next-rPTE is always valid.
    """
    machine = Machine(Mode.RIOMMU)
    api = machine.dma_api(BDF)
    ring = api.create_ring(POOL)
    phys = machine.mem.alloc_dma_buffer(2048)
    handles = [
        api.map_request(
            MapRequest(
                phys_addr=phys, size=2048,
                direction=DmaDirection.TO_DEVICE, ring=ring,
            )
        ).device_addr
        for _ in range(POOL)
    ]
    for i in range(SENDS):
        machine.bus.dma_read(BDF, handles[i % POOL], 1024)
    stats = machine.riommu.riotlb.stats
    return 1.0 - stats.walks / stats.translations, stats.prefetch_hits


def main() -> None:
    pool_hits, pool_walk = run_pool(POOL)
    one_hits, one_walk = run_pool(1)
    penalty = pool_walk - one_walk
    print(f"{POOL}-buffer pool : IOTLB hit rate {pool_hits:.2f}, "
          f"walk cycles/send {pool_walk:.0f}")
    print(f"single buffer  : IOTLB hit rate {one_hits:.2f}, "
          f"walk cycles/send {one_walk:.0f}")
    print(f"IOTLB miss penalty: {penalty:.0f} cycles = "
          f"{penalty / CLOCK_HZ * 1e6:.2f} us  (paper: ~1,532 cycles = ~0.5 us)\n")

    served, prefetch_hits = run_riommu_ring()
    print(f"rIOMMU, ring-sequential sends: {served:.1%} of translations served "
          f"without a DRAM fetch ({prefetch_hits} prefetch hits)")
    print("the prefetched next-rPTE removes the miss penalty exactly where "
          "it would matter.")


if __name__ == "__main__":
    main()
