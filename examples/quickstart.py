#!/usr/bin/env python
"""Quickstart: map a buffer under each IOMMU design and watch it work.

Walks through the paper's core comparison at the smallest possible
scale: one device, one DMA, three protection regimes (none, baseline
IOMMU, rIOMMU), printing what each map/unmap costs in CPU cycles.

Run:  python examples/quickstart.py
"""

from repro import IoPageFault
from repro.api import DmaDirection, Machine, MapRequest, Mode, UnmapRequest

BDF = 0x0300  # PCI bus 3, device 0, function 0


def demo(mode: Mode) -> None:
    print(f"\n=== {mode.label} ===")
    machine = Machine(mode)
    api = machine.dma_api(BDF)

    # rIOMMU mappings live in per-ring flat tables; create one.
    ring = api.create_ring(16)

    # The OS allocates and pins a DMA target buffer ...
    buffer_phys = machine.mem.alloc_dma_buffer(4096)
    # ... and maps it for the device (Figure 4 of the paper).
    handle = api.map_request(
        MapRequest(
            phys_addr=buffer_phys, size=1500,
            direction=DmaDirection.FROM_DEVICE, ring=ring,
        )
    ).device_addr
    print(f"mapped phys {buffer_phys:#x} -> device address {handle:#x}")

    # The device DMAs a packet through the (r)IOMMU (Figure 5).
    machine.bus.dma_write(BDF, handle, b"payload from the wire")
    print("device wrote:", machine.mem.ram.read(buffer_phys, 21))

    # The driver tears the mapping down (Figure 6).
    api.unmap_request(UnmapRequest(device_addr=handle, end_of_burst=True))
    try:
        machine.bus.dma_write(BDF, handle, b"use after unmap")
        print("device could still write (UNPROTECTED)")
    except IoPageFault as fault:
        print(f"post-unmap DMA faulted as it should: {type(fault).__name__}")

    cycles = api.overhead_cycles
    print(f"map+unmap cost charged to the core: {cycles:.0f} cycles")


def main() -> None:
    for mode in (Mode.NONE, Mode.STRICT, Mode.DEFER, Mode.RIOMMU):
        demo(mode)
    print(
        "\nThe whole point of the paper in two numbers: strict spends ~7,600"
        "\ncycles per mapping pair, the rIOMMU spends a few hundred."
    )


if __name__ == "__main__":
    main()
