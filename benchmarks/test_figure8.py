"""E3 — regenerate the paper's Figure 8 (throughput vs cycles/packet)."""

import pytest

from repro.analysis import run_figure8


@pytest.mark.benchmark(group="figure8")
def test_figure8(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_figure8(
            busywait_sweep=(0, 500, 1000, 2000, 4000, 8000, 16000),
            packets=400,
            warmup=100,
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("figure8", result.render())
    # The validated model coincides with the busy-wait-lengthened system.
    assert result.max_model_error() < 0.02
    # The mode points also fall on the curve (they are cycle-driven too).
    for _mode, (cycles, gbps) in result.mode_points.items():
        from repro.perf import gbps_from_cycles
        from repro.sim import MLX_SETUP

        predicted = min(
            gbps_from_cycles(cycles, MLX_SETUP.clock_hz),
            MLX_SETUP.nic_profile.line_rate_gbps,
        )
        assert gbps == pytest.approx(predicted, rel=0.02)
