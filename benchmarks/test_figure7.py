"""E2 — regenerate the paper's Figure 7 (cycles/packet by component)."""

import pytest

from repro.analysis import run_figure7
from repro.modes import ALL_MODES, Mode


@pytest.mark.benchmark(group="figure7")
def test_figure7(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_figure7(packets=600, warmup=150), rounds=1, iterations=1
    )
    save_artifact("figure7", result.render())
    # The paper's bar labels relative to C_none: strict ~9.4x, none 1.0x.
    assert result.relative(Mode.STRICT) == pytest.approx(9.4, abs=0.5)
    assert result.relative(Mode.RIOMMU) == pytest.approx(1.30, abs=0.07)
    assert result.relative(Mode.RIOMMU_NC) == pytest.approx(1.91, abs=0.12)
    totals = [result.total(m) for m in ALL_MODES]
    assert totals == sorted(totals, reverse=True)
