"""E9 — regenerate the §4 SATA/Bonnie++ sidebar result."""

import pytest

from repro.analysis import run_sata


@pytest.mark.benchmark(group="sata")
def test_sata(benchmark, save_artifact):
    result = benchmark.pedantic(lambda: run_sata(requests=40), rounds=1, iterations=1)
    save_artifact("sata", result.render())
    # Paper: "indistinguishable performance results" strict vs none.
    assert result.slowdown == pytest.approx(1.0, abs=0.015)
    # And the reason rIOMMU does not target AHCI: out-of-order completion.
    assert result.out_of_order_completions
