"""E10 — §5.1's pass-through revalidation (HWpt vs SWpt vs none)."""

import pytest

from repro.analysis import run_passthrough


@pytest.mark.benchmark(group="passthrough")
def test_passthrough(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_passthrough(packets=300, warmup=60), rounds=1, iterations=1
    )
    save_artifact("passthrough", result.render())
    # HWpt and SWpt identical despite SWpt's IOTLB misses.
    assert result.stream_gbps["HWpt"] == pytest.approx(result.stream_gbps["SWpt"])
    assert result.rr_rtt_us["HWpt"] == pytest.approx(result.rr_rtt_us["SWpt"])
    # Stream ~10% below no-IOMMU (paper §5.1).
    ratio = result.stream_gbps["HWpt"] / result.stream_gbps["none"]
    assert ratio == pytest.approx(0.90, abs=0.02)
    # RR effectively identical to no-IOMMU (sub-2% at 13.4 us).
    assert result.rr_rtt_us["HWpt"] == pytest.approx(result.rr_rtt_us["none"], rel=0.02)
    # And the functional SWpt really did miss the IOTLB a lot.
    assert result.swpt_iotlb_miss_rate > 0.3
