"""Cross-build + event-kernel CI perf gate.

Runs the quick benchmark (the representative cells) twice in one
process — once under the ``scalar`` reference build, once under the
``columnar`` default — and fails unless:

* the columnar build is at least ``--min-speedup`` (default 1.3×)
  faster than scalar on every stream cell, and
* neither run regresses past the history sentinel's rolling median
  for its *own* build (``--max-regression``, default 0.25).

On top of the build gate, the event-kernel gate checks the scheduler
refactor's contract on every run:

* every representative cell is bit-identical between the legacy loop
  engine and the event kernel (``to_dict`` equality), and the
  multi-ring cell is bit-identical between serial and sharded
  execution;
* on hosts with enough cores (>= the shard count), the sharded run of
  the multi-ring cell is at least ``--min-shard-speedup`` (default
  1.5×) faster than the serial reference.  On smaller hosts the
  measurement is skipped entirely (the report records why) — a 1-core
  container cannot physically show a parallel speedup, and a ratio
  taken there would only pollute the trajectory.

The lite-telemetry gate (``--max-lite-overhead``, default 0.03) times
the stream cells under ``observe=off`` and ``observe=lite`` and fails
if the lite tier costs more than the allowed fraction in aggregate —
the always-on contract.  ``--lite-only`` runs just this check (the CI
telemetry-smoke configuration).

Both harness runs are appended to the perf-history log (each line
carries its ``datapath`` build; the sentinel never compares across
builds or across quick/full runs), and a combined gate report is
written for the CI artifact upload::

    PYTHONPATH=src python benchmarks/perf_gate.py [--min-speedup 1.3]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(1, str(pathlib.Path(__file__).resolve().parent))

import perf_history  # noqa: E402
from perf_harness import (  # noqa: E402
    OBSERVE_CELLS,
    REPRESENTATIVE_CELLS,
    SHARDING_CELL,
    run_harness,
    time_observe_overhead,
    time_sharding,
)

from repro import datapath as repro_datapath  # noqa: E402
from repro.config import RunConfig  # noqa: E402
from repro.modes import Mode  # noqa: E402
from repro.sim.runner import run_with_config  # noqa: E402
from repro.sim.setups import setup_by_name  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_gate.json"

#: Cells the cross-build speedup is asserted on: the paper's headline
#: stream benchmark under the most expensive protection regime, the
#: cheapest safe one, and no protection — the three cells whose inner
#: loops the columnar build specializes.
STREAM_CELLS: Tuple[Tuple[str, str, str], ...] = tuple(
    cell for cell in REPRESENTATIVE_CELLS if cell[1] == "stream"
)


def cell_seconds(
    report: Dict[str, object], cell: Tuple[str, str, str]
) -> Optional[float]:
    """Wall-clock seconds of ``cell`` in a harness report, if present."""
    for row in report["cells"]:
        if (row["setup"], row["benchmark"], row["mode"]) == cell:
            seconds = float(row["seconds"])
            return seconds if seconds > 0 else None
    return None


def check_engine_parity(
    cells: Sequence[Tuple[str, str, str]] = REPRESENTATIVE_CELLS,
    shards: int = 4,
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Bit-parity sweep: loop vs event kernel, serial vs sharded.

    Every cell must produce an identical ``to_dict`` under the legacy
    loop engine and the event kernel; the multi-ring sharding cell must
    additionally be identical between serial and ``shards``-way sharded
    execution.  Returns ``(rows, errors)``.
    """
    rows: List[Dict[str, object]] = []
    errors: List[str] = []
    loop_config = RunConfig.from_env(fast=True, engine="loop", shards=1)
    events_config = RunConfig.from_env(fast=True, engine="events", shards=1)
    sharded_config = RunConfig.from_env(fast=True, engine="events", shards=shards)
    for setup_name, benchmark, mode_label in cells:
        setup = setup_by_name(setup_name)
        mode = Mode(mode_label)
        key = perf_history.cell_key(setup_name, benchmark, mode_label)
        loop = run_with_config(setup, mode, benchmark, loop_config)
        events = run_with_config(setup, mode, benchmark, events_config)
        row = {"cell": key, "loop_vs_events": loop.to_dict() == events.to_dict()}
        if not row["loop_vs_events"]:
            errors.append(f"{key}: event kernel diverges from the loop engine")
        if (setup_name, benchmark, mode_label) == SHARDING_CELL:
            sharded = run_with_config(setup, mode, benchmark, sharded_config)
            row["serial_vs_sharded"] = events.to_dict() == sharded.to_dict()
            if not row["serial_vs_sharded"]:
                errors.append(
                    f"{key}: {shards}-shard run diverges from the serial reference"
                )
        rows.append(row)
    return rows, errors


def shard_speedup_skip_reason(
    shards: int, cores: Optional[int] = None
) -> Optional[str]:
    """Why the shard-speedup gate cannot run here, or None if it can.

    A host with fewer cores than shards cannot physically show a
    parallel speedup; any ratio measured there is scheduler noise, so
    the gate must skip the measurement entirely rather than record a
    misleading number (``cores=None`` consults ``os.cpu_count()``).
    """
    if cores is None:
        cores = os.cpu_count() or 1
    if cores < shards:
        return (
            f"host has {cores} cores < {shards} shards; a parallel "
            f"speedup cannot be measured here"
        )
    return None


def check_shard_speedup(
    min_shard_speedup: float, shards: int = 4
) -> Tuple[Dict[str, object], List[str]]:
    """Wall-clock gate: sharded multi-ring run vs the serial reference.

    On hosts with fewer cores than shards the measurement is skipped
    outright (see :func:`shard_speedup_skip_reason`) — a ratio taken
    there would be meaningless and would pollute the recorded
    trajectory — and the gate reports the skip instead of a number.
    """
    errors: List[str] = []
    skip = shard_speedup_skip_reason(shards)
    if skip is not None:
        return (
            {
                "cell": "/".join(SHARDING_CELL),
                "shards": shards,
                "cpu_count": os.cpu_count(),
                "min_speedup": min_shard_speedup,
                "enforced": False,
                "skipped": True,
                "skip_reason": skip,
            },
            errors,
        )
    measurement = time_sharding(shards=shards, fast=False)
    measurement["min_speedup"] = min_shard_speedup
    measurement["enforced"] = True
    measurement["skipped"] = False
    if measurement["speedup_vs_serial"] < min_shard_speedup:
        errors.append(
            f"{measurement['cell']}: {shards}-shard speedup is only "
            f"{measurement['speedup_vs_serial']:.2f}x serial "
            f"(gate requires >= {min_shard_speedup:.2f}x)"
        )
    return measurement, errors


def check_lite_overhead(
    max_overhead: float,
    cells: Sequence[Tuple[str, str, str]] = OBSERVE_CELLS,
    repeats: int = 3,
) -> Tuple[Dict[str, object], List[str]]:
    """Wall-clock gate: ``observe=lite`` vs ``observe=off``.

    The lite tier's promise is "always-on telemetry": it reads counters
    at burst boundaries instead of streaming per-event records, so the
    observer-free columnar loops stay active and the cost stays within
    ``max_overhead`` (CI uses 3%) of an unobserved run.  Per-cell
    columns are recorded, but the gate compares the *aggregate* across
    the stream cells: the fastest cell is ~13ms at fast sizing, and a
    per-cell ratio at that scale gates scheduler jitter, not the tier.
    """
    errors: List[str] = []
    rows = time_observe_overhead(cells=cells, repeats=repeats)
    off_total = sum(row["off_seconds"] for row in rows)
    lite_total = sum(row["lite_seconds"] for row in rows)
    overhead = (lite_total / off_total - 1.0) if off_total > 0 else 0.0
    measurement: Dict[str, object] = {
        "cells": rows,
        "off_seconds": round(off_total, 4),
        "lite_seconds": round(lite_total, 4),
        "overhead_vs_off": round(overhead, 4),
        "max_overhead": max_overhead,
    }
    if overhead > max_overhead:
        errors.append(
            f"observe=lite costs {overhead:+.1%} over observe=off "
            f"across the stream cells (gate requires <= {max_overhead:.0%})"
        )
    return measurement, errors


def run_gate(
    min_speedup: float,
    max_regression: Optional[float],
    repeats: int = 3,
    history_path: Optional[pathlib.Path] = None,
    min_shard_speedup: float = 1.5,
    shards: int = 4,
    max_lite_overhead: Optional[float] = 0.03,
) -> Tuple[Dict[str, object], List[str]]:
    """Bench scalar + columnar, compare, sentinel-check; returns
    ``(gate_report, errors)`` — an empty error list means the gate is
    green."""
    errors: List[str] = []
    reports: Dict[str, Dict[str, object]] = {}
    for build in ("scalar", "columnar"):
        repro_datapath.set_datapath(build)
        # output=None: the gate's timings must not overwrite the
        # trajectory baseline the regular harness compares against.
        reports[build] = run_harness(repeats=repeats, output=None, quick=True)
    repro_datapath.set_datapath(repro_datapath.DEFAULT_BUILD)

    comparisons: List[Dict[str, object]] = []
    for cell in STREAM_CELLS:
        scalar_s = cell_seconds(reports["scalar"], cell)
        columnar_s = cell_seconds(reports["columnar"], cell)
        key = perf_history.cell_key(*cell)
        if scalar_s is None or columnar_s is None:
            errors.append(f"{key}: missing timing in one of the builds")
            continue
        ratio = scalar_s / columnar_s
        comparisons.append(
            {
                "cell": key,
                "scalar_seconds": round(scalar_s, 4),
                "columnar_seconds": round(columnar_s, 4),
                "speedup_vs_scalar": round(ratio, 3),
            }
        )
        if ratio < min_speedup:
            errors.append(
                f"{key}: columnar build is only {ratio:.2f}x scalar "
                f"(gate requires >= {min_speedup:.2f}x)"
            )

    if max_regression is not None and history_path is not None:
        history = perf_history.load_history(history_path)
        for build in ("scalar", "columnar"):
            error = perf_history.check_history_regression(
                reports[build], history, max_regression
            )
            if error is not None:
                errors.append(f"[{build}] {error}")
            perf_history.append_history(reports[build], history_path)

    # The event-kernel gate: bit-parity (loop vs events, serial vs
    # sharded) on every run, shard wall-clock speedup where the host
    # has the cores to show one.
    parity_rows, parity_errors = check_engine_parity(shards=shards)
    errors.extend(parity_errors)
    shard_speedup, shard_errors = check_shard_speedup(min_shard_speedup, shards)
    errors.extend(shard_errors)

    # The lite-telemetry gate: observe="lite" must stay within a few
    # percent of observe="off" on the stream cells (the always-on
    # contract — lite never touches the trace bus).
    lite_overhead: Optional[Dict[str, object]] = None
    if max_lite_overhead is not None:
        lite_overhead, lite_errors = check_lite_overhead(max_lite_overhead)
        errors.extend(lite_errors)

    gate_report: Dict[str, object] = {
        "schema": "riommu-repro/bench-gate/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "min_speedup": min_speedup,
        "max_regression": max_regression,
        "max_lite_overhead": max_lite_overhead,
        "passed": not errors,
        "stream_cells": comparisons,
        "engine_parity": parity_rows,
        "shard_speedup": shard_speedup,
        "lite_overhead": lite_overhead,
        "errors": errors,
        "scalar": reports["scalar"],
        "columnar": reports["columnar"],
    }
    return gate_report, errors


def _print_lite_overhead(measurement: Dict[str, object]) -> None:
    for row in measurement["cells"]:
        print(
            f"{row['cell']}: observe=off {row['off_seconds']}s, "
            f"observe=lite {row['lite_seconds']}s "
            f"-> {row['overhead_vs_off']:+.1%} overhead"
        )
    print(
        f"lite overhead (aggregate over {len(measurement['cells'])} "
        f"stream cells): {measurement['overhead_vs_off']:+.1%} "
        f"(gate <= {measurement['max_overhead']:.0%})"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.3,
        metavar="RATIO",
        help="fail unless columnar is at least RATIO x faster than "
        "scalar on every stream cell (default 1.3)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="fail if either build's mlx/stream/strict exceeds its "
        "same-build rolling history median by more than FRACTION "
        "(default 0.25); use a negative value to skip",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=1.5,
        metavar="RATIO",
        help="fail unless the sharded multi-ring run is at least RATIO x "
        "faster than the serial event kernel (default 1.5); only "
        "enforced on hosts with at least --shards cores",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="N",
        help="shard count for the sharded parity + speedup checks "
        "(default 4)",
    )
    parser.add_argument(
        "--max-lite-overhead",
        type=float,
        default=0.03,
        metavar="FRACTION",
        help="fail if observe=lite costs more than FRACTION over "
        "observe=off on any stream cell (default 0.03); use a negative "
        "value to skip",
    )
    parser.add_argument(
        "--lite-only",
        action="store_true",
        help="run only the lite-overhead check (the CI telemetry-smoke "
        "configuration): no build/engine/shard gates, no history",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "-o", "--output", default=str(DEFAULT_OUTPUT), help="gate report path"
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help="perf-history log (default: the tracked BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the history sentinel: no rolling-median gate, no append",
    )
    args = parser.parse_args(argv)
    max_lite_overhead: Optional[float] = (
        args.max_lite_overhead if args.max_lite_overhead >= 0 else None
    )

    if args.lite_only:
        if max_lite_overhead is None:
            parser.error("--lite-only needs a non-negative --max-lite-overhead")
        lite_overhead, errors = check_lite_overhead(
            max_lite_overhead, repeats=args.repeats
        )
        lite_report = {
            "schema": "riommu-repro/bench-gate/v1",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "max_lite_overhead": max_lite_overhead,
            "passed": not errors,
            "lite_overhead": lite_overhead,
            "errors": errors,
        }
        output = pathlib.Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(lite_report, indent=2) + "\n")
        _print_lite_overhead(lite_overhead)
        print(f"gate report written to {output}", file=sys.stderr)
        if errors:
            for error in errors:
                print(f"PERF GATE: {error}", file=sys.stderr)
            return 1
        print(
            f"lite-overhead gate passed (<= {max_lite_overhead:.0%} "
            f"over observe=off)"
        )
        return 0

    history_path: Optional[pathlib.Path] = None
    max_regression: Optional[float] = None
    if not args.no_history and args.max_regression >= 0:
        history_path = (
            pathlib.Path(args.history) if args.history else perf_history.ROOT_HISTORY
        )
        max_regression = args.max_regression

    gate_report, errors = run_gate(
        min_speedup=args.min_speedup,
        max_regression=max_regression,
        repeats=args.repeats,
        history_path=history_path,
        min_shard_speedup=args.min_shard_speedup,
        shards=args.shards,
        max_lite_overhead=max_lite_overhead,
    )

    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(gate_report, indent=2) + "\n")

    for row in gate_report["stream_cells"]:
        print(
            f"{row['cell']}: scalar {row['scalar_seconds']}s, "
            f"columnar {row['columnar_seconds']}s "
            f"-> {row['speedup_vs_scalar']}x"
        )
    parity_ok = sum(
        1 for row in gate_report["engine_parity"] if row["loop_vs_events"]
    )
    print(
        f"engine parity: {parity_ok}/{len(gate_report['engine_parity'])} "
        f"cells bit-identical loop vs events"
    )
    shard = gate_report["shard_speedup"]
    if shard.get("skipped"):
        print(
            f"shard speedup ({shard['cell']}, {shard['shards']} shards): "
            f"skipped — {shard['skip_reason']}"
        )
    else:
        print(
            f"shard speedup ({shard['cell']}, {shard['shards']} shards, enforced): "
            f"serial {shard['serial_seconds']}s, sharded {shard['sharded_seconds']}s "
            f"-> {shard['speedup_vs_serial']}x"
        )
    if gate_report.get("lite_overhead") is not None:
        _print_lite_overhead(gate_report["lite_overhead"])
    print(f"gate report written to {output}", file=sys.stderr)
    if errors:
        for error in errors:
            print(f"PERF GATE: {error}", file=sys.stderr)
        return 1
    print(f"perf gate passed (min speedup {args.min_speedup}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
