"""Cross-build CI perf gate: the columnar build must stay fast.

Runs the quick benchmark (the representative cells) twice in one
process — once under the ``scalar`` reference build, once under the
``columnar`` default — and fails unless:

* the columnar build is at least ``--min-speedup`` (default 1.3×)
  faster than scalar on every stream cell, and
* neither run regresses past the history sentinel's rolling median
  for its *own* build (``--max-regression``, default 0.25).

Both runs are appended to the perf-history log (each line carries its
``datapath`` build; the sentinel never compares across builds), and a
combined gate report is written for the CI artifact upload::

    PYTHONPATH=src python benchmarks/perf_gate.py [--min-speedup 1.3]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(1, str(pathlib.Path(__file__).resolve().parent))

import perf_history  # noqa: E402
from perf_harness import REPRESENTATIVE_CELLS, run_harness  # noqa: E402

from repro import datapath as repro_datapath  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_gate.json"

#: Cells the cross-build speedup is asserted on: the paper's headline
#: stream benchmark under the most expensive protection regime, the
#: cheapest safe one, and no protection — the three cells whose inner
#: loops the columnar build specializes.
STREAM_CELLS: Tuple[Tuple[str, str, str], ...] = tuple(
    cell for cell in REPRESENTATIVE_CELLS if cell[1] == "stream"
)


def cell_seconds(
    report: Dict[str, object], cell: Tuple[str, str, str]
) -> Optional[float]:
    """Wall-clock seconds of ``cell`` in a harness report, if present."""
    for row in report["cells"]:
        if (row["setup"], row["benchmark"], row["mode"]) == cell:
            seconds = float(row["seconds"])
            return seconds if seconds > 0 else None
    return None


def run_gate(
    min_speedup: float,
    max_regression: Optional[float],
    repeats: int = 3,
    history_path: Optional[pathlib.Path] = None,
) -> Tuple[Dict[str, object], List[str]]:
    """Bench scalar + columnar, compare, sentinel-check; returns
    ``(gate_report, errors)`` — an empty error list means the gate is
    green."""
    errors: List[str] = []
    reports: Dict[str, Dict[str, object]] = {}
    for build in ("scalar", "columnar"):
        repro_datapath.set_datapath(build)
        # output=None: the gate's timings must not overwrite the
        # trajectory baseline the regular harness compares against.
        reports[build] = run_harness(repeats=repeats, output=None, quick=True)
    repro_datapath.set_datapath(repro_datapath.DEFAULT_BUILD)

    comparisons: List[Dict[str, object]] = []
    for cell in STREAM_CELLS:
        scalar_s = cell_seconds(reports["scalar"], cell)
        columnar_s = cell_seconds(reports["columnar"], cell)
        key = perf_history.cell_key(*cell)
        if scalar_s is None or columnar_s is None:
            errors.append(f"{key}: missing timing in one of the builds")
            continue
        ratio = scalar_s / columnar_s
        comparisons.append(
            {
                "cell": key,
                "scalar_seconds": round(scalar_s, 4),
                "columnar_seconds": round(columnar_s, 4),
                "speedup_vs_scalar": round(ratio, 3),
            }
        )
        if ratio < min_speedup:
            errors.append(
                f"{key}: columnar build is only {ratio:.2f}x scalar "
                f"(gate requires >= {min_speedup:.2f}x)"
            )

    if max_regression is not None and history_path is not None:
        history = perf_history.load_history(history_path)
        for build in ("scalar", "columnar"):
            error = perf_history.check_history_regression(
                reports[build], history, max_regression
            )
            if error is not None:
                errors.append(f"[{build}] {error}")
            perf_history.append_history(reports[build], history_path)

    gate_report: Dict[str, object] = {
        "schema": "riommu-repro/bench-gate/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "min_speedup": min_speedup,
        "max_regression": max_regression,
        "passed": not errors,
        "stream_cells": comparisons,
        "errors": errors,
        "scalar": reports["scalar"],
        "columnar": reports["columnar"],
    }
    return gate_report, errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.3,
        metavar="RATIO",
        help="fail unless columnar is at least RATIO x faster than "
        "scalar on every stream cell (default 1.3)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="fail if either build's mlx/stream/strict exceeds its "
        "same-build rolling history median by more than FRACTION "
        "(default 0.25); use a negative value to skip",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "-o", "--output", default=str(DEFAULT_OUTPUT), help="gate report path"
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help="perf-history log (default: the tracked BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the history sentinel: no rolling-median gate, no append",
    )
    args = parser.parse_args(argv)

    history_path: Optional[pathlib.Path] = None
    max_regression: Optional[float] = None
    if not args.no_history and args.max_regression >= 0:
        history_path = (
            pathlib.Path(args.history) if args.history else perf_history.ROOT_HISTORY
        )
        max_regression = args.max_regression

    gate_report, errors = run_gate(
        min_speedup=args.min_speedup,
        max_regression=max_regression,
        repeats=args.repeats,
        history_path=history_path,
    )

    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(gate_report, indent=2) + "\n")

    for row in gate_report["stream_cells"]:
        print(
            f"{row['cell']}: scalar {row['scalar_seconds']}s, "
            f"columnar {row['columnar_seconds']}s "
            f"-> {row['speedup_vs_scalar']}x"
        )
    print(f"gate report written to {output}", file=sys.stderr)
    if errors:
        for error in errors:
            print(f"PERF GATE: {error}", file=sys.stderr)
        return 1
    print(f"perf gate passed (min speedup {args.min_speedup}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
