"""E8 — regenerate the §5.4 TLB-prefetcher comparison."""

import pytest

from repro.analysis import run_prefetcher_study


@pytest.mark.benchmark(group="prefetchers")
def test_prefetchers(benchmark, save_artifact):
    study = benchmark.pedantic(
        lambda: run_prefetcher_study(packets=400, history_capacities=(64, 256, 1024, 4096)),
        rounds=1,
        iterations=1,
    )
    save_artifact("prefetchers", study.render())

    # rIOTLB: two entries per ring, essentially no DRAM fetches.
    assert study.riotlb.served_without_walk > 0.97

    # Modified Markov/Recency beat their baselines (which forget on unmap).
    for name in ("markov", "recency"):
        assert (
            study.best(name, "modified").hit_rate
            > study.best(name, "baseline").hit_rate
        )

    # Recency (modified, large history) predicts most accesses ...
    assert study.best("recency", "modified").stats.coverage > 0.5
    # ... while Distance remains ineffective even when modified.
    assert study.best("distance", "modified").stats.coverage < 0.3
