"""E1 — regenerate the paper's Table 1 (map/unmap cycle breakdown)."""

import pytest

from repro.analysis import run_table1
from repro.modes import BASELINE_MODES
from repro.perf import TABLE1_CYCLES


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_table1(packets=600, warmup=150), rounds=1, iterations=1
    )
    save_artifact("table1", result.render())
    for mode in BASELINE_MODES:
        for component, paper in TABLE1_CYCLES[mode].items():
            assert result.averages[mode][component] == pytest.approx(paper, rel=0.02)
