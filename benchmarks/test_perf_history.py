"""Tests for the perf-history regression sentinel.

All pure-arithmetic and file-shape tests — no timed runs — so they
always run (no ``perf`` mark needed).  The seeded repo-root
``BENCH_history.jsonl`` is itself pinned: it must parse and carry a
baseline for the gate's default cell.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from perf_history import (
    DEFAULT_CELL,
    HISTORY_SCHEMA,
    ROOT_HISTORY,
    append_history,
    cell_key,
    check_history_regression,
    history_entry,
    load_history,
    report_observe,
    rolling_baseline,
)


def _report(seconds, timestamp="2026-08-07T00:00:00"):
    """A minimal BENCH_runner-shaped report timing the default cell."""
    return {
        "schema": "riommu-repro/bench-runner/v1",
        "timestamp": timestamp,
        "python": "3.11.7",
        "cpu_count": 4,
        "fastpath_enabled": True,
        "quick": True,
        "cells": [
            {
                "setup": "mlx",
                "benchmark": "stream",
                "mode": "strict",
                "fast": True,
                "seconds": seconds,
                "best_of": 1,
            }
        ],
    }


def test_entry_append_load_roundtrip(tmp_path):
    path = tmp_path / "history.jsonl"
    entry = append_history(_report(0.07), path)
    assert entry["schema"] == HISTORY_SCHEMA
    assert entry["cells"] == {"mlx/stream/strict": 0.07}
    append_history(_report(0.08), path)
    loaded = load_history(path)
    assert [e["cells"]["mlx/stream/strict"] for e in loaded] == [0.07, 0.08]
    # Append-only: each run adds exactly one line.
    assert len(path.read_text().splitlines()) == 2


def test_load_skips_malformed_and_foreign_lines(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history(_report(0.07), path)
    with open(path, "a") as handle:
        handle.write("this is not json\n")
        handle.write(json.dumps({"schema": "someone/elses", "cells": {}}) + "\n")
        handle.write(json.dumps({"schema": HISTORY_SCHEMA}) + "\n")  # no cells
        handle.write("\n")
    append_history(_report(0.08), path)
    assert len(load_history(path)) == 2


def test_load_missing_file_is_empty(tmp_path):
    assert load_history(tmp_path / "nope.jsonl") == []


def test_rolling_baseline_is_median_of_last_window(tmp_path):
    path = tmp_path / "history.jsonl"
    for seconds in (0.10, 0.07, 0.08, 0.07, 0.09, 0.07, 0.08):
        append_history(_report(seconds), path)
    history = load_history(path)
    # Last 5: .08 .07 .09 .07 .08 -> median .08; the early 0.10 outlier
    # has rolled out of the window.
    assert rolling_baseline(history, DEFAULT_CELL, window=5) == 0.08
    assert rolling_baseline(history, DEFAULT_CELL, window=3) == 0.08
    assert rolling_baseline(history, ("mlx", "rr", "strict")) is None
    assert rolling_baseline([], DEFAULT_CELL) is None


def test_median_shrugs_off_a_single_outlier(tmp_path):
    path = tmp_path / "history.jsonl"
    for seconds in (0.07, 0.07, 0.07, 0.07, 5.0):
        append_history(_report(seconds), path)
    assert rolling_baseline(load_history(path), DEFAULT_CELL, window=5) == 0.07


def test_regression_detected_and_tolerated(tmp_path):
    path = tmp_path / "history.jsonl"
    for seconds in (0.07, 0.08, 0.07, 0.08, 0.07):
        append_history(_report(seconds), path)
    history = load_history(path)
    # Within tolerance: 0.08 <= 0.07 * 1.25.
    assert check_history_regression(_report(0.08), history, 0.25) is None
    # Beyond tolerance: named, quantified error.
    error = check_history_regression(_report(0.20), history, 0.25)
    assert error is not None
    assert "mlx/stream/strict regressed" in error
    assert "rolling median" in error
    # No baseline -> no verdict.
    assert check_history_regression(_report(0.20), [], 0.25) is None
    other = _report(0.20)
    other["cells"][0]["mode"] = "none"
    assert check_history_regression(other, history, 0.25) is None


def test_cell_key_shape():
    assert cell_key("mlx", "stream", "strict") == "mlx/stream/strict"
    assert cell_key(*DEFAULT_CELL) == "mlx/stream/strict"


def test_seeded_root_history_is_a_valid_baseline():
    """The committed BENCH_history.jsonl seeds the sentinel from day one."""
    assert ROOT_HISTORY.name == "BENCH_history.jsonl"
    assert ROOT_HISTORY.exists()
    history = load_history(ROOT_HISTORY)
    assert history, "seeded history must parse"
    baseline = rolling_baseline(history, DEFAULT_CELL)
    assert baseline is not None and baseline > 0


def test_rolling_baseline_keys_on_quick_flag(tmp_path):
    """Quick and full runs must never share a baseline.

    Quick runs (representative cells only) and full runs (grid sweep
    warm in the process) have different cache behaviour; one pool of
    fast full-run entries must not mask a quick-run regression, nor
    slow quick entries fabricate a full-run one.
    """
    path = tmp_path / "history.jsonl"
    for seconds in (0.05, 0.05):
        append_history(_report(seconds), path)  # quick entries
    full = _report(0.20)
    full["quick"] = False
    for _ in range(2):
        append_history(full, path)
    history = load_history(path)
    assert rolling_baseline(history, DEFAULT_CELL, quick=True) == 0.05
    assert rolling_baseline(history, DEFAULT_CELL, quick=False) == 0.20
    # Unkeyed, the pools blur together — exactly what the gate must not do.
    assert rolling_baseline(history, DEFAULT_CELL, quick=None) not in (0.05, 0.20)


def test_entries_predating_quick_field_count_as_full(tmp_path):
    path = tmp_path / "history.jsonl"
    legacy = _report(0.30)
    del legacy["quick"]
    append_history(legacy, path)
    history = load_history(path)
    assert rolling_baseline(history, DEFAULT_CELL, quick=False) == 0.30
    assert rolling_baseline(history, DEFAULT_CELL, quick=True) is None


def test_regression_check_compares_within_quick_pool(tmp_path):
    """A quick report is judged only against quick history (and names
    the pool in its verdict), even with slower full entries present."""
    path = tmp_path / "history.jsonl"
    for seconds in (0.05, 0.05, 0.05, 0.05, 0.05):
        append_history(_report(seconds), path)
    full = _report(0.50)
    full["quick"] = False
    for _ in range(5):
        append_history(full, path)
    history = load_history(path)
    # 0.12s is fine against the 0.50s full pool but a 2.4x quick
    # regression; the quick-keyed gate must catch it.
    error = check_history_regression(_report(0.12), history, 0.25)
    assert error is not None and "quick runs" in error
    # The same seconds in a full report passes against the full pool.
    ok = _report(0.12)
    ok["quick"] = False
    assert check_history_regression(ok, history, 0.25) is None


def test_history_entry_carries_engine_and_sharding():
    report = _report(0.07)
    report["engine"] = "events"
    report["sharding"] = {"cell": "mlx/mstream/strict", "speedup_vs_serial": 2.1}
    entry = history_entry(report)
    assert entry["engine"] == "events"
    assert entry["sharding"]["speedup_vs_serial"] == 2.1
    # Reports without the v2 extensions produce entries without them.
    bare = history_entry(_report(0.07))
    assert "engine" not in bare and "sharding" not in bare


def test_history_entry_carries_the_observe_tier():
    """v3: entries record the observe tier; older artifacts infer off.

    No run before v3 ever timed an observed cell, so the inference is
    exact, not a guess — and the sentinel's medians never mix an
    always-on-lite trajectory with the unobserved one.
    """
    report = _report(0.07)
    assert report_observe(report) == "off"        # v1/v2: no field
    assert history_entry(report)["observe"] == "off"
    report["observe"] = "lite"
    entry = history_entry(report)
    assert entry["observe"] == "lite"
    assert report_observe(entry) == "lite"
    # The overhead column rides along when the report has one.
    report["observe_lite"] = [
        {"cell": "mlx/stream/strict", "overhead_vs_off": 0.01}
    ]
    assert history_entry(report)["observe_lite"][0]["overhead_vs_off"] == 0.01
    assert "observe_lite" not in history_entry(_report(0.07))


def test_rolling_baseline_keys_on_observe_tier(tmp_path):
    """A lite-tier run is judged only against lite-tier history."""
    path = tmp_path / "history.jsonl"
    for seconds in (0.05, 0.05):
        append_history(_report(seconds), path)    # observe=off entries
    lite = _report(0.20)
    lite["observe"] = "lite"
    for _ in range(2):
        append_history(lite, path)
    history = load_history(path)
    assert rolling_baseline(history, DEFAULT_CELL, observe="off") == 0.05
    assert rolling_baseline(history, DEFAULT_CELL, observe="lite") == 0.20
    assert rolling_baseline(history, DEFAULT_CELL, observe="full") is None
    # The regression check resolves the pool from the report itself:
    # 0.06s would be a 20% lite regression but is clean against the
    # off pool, and vice versa for a slow off run against lite history.
    for _ in range(3):
        append_history(_report(0.05), path)
        append_history(lite, path)
    history = load_history(path)
    fresh_lite = _report(0.21)
    fresh_lite["observe"] = "lite"
    assert check_history_regression(fresh_lite, history, 0.25) is None
    slow_off = _report(0.21)
    error = check_history_regression(slow_off, history, 0.25)
    assert error is not None and "observe=" not in error
    breach = _report(0.30)
    breach["observe"] = "lite"
    error = check_history_regression(breach, history, 0.25)
    assert error is not None and "observe=lite" in error


def test_history_entry_captures_environment():
    entry = history_entry(_report(0.07))
    assert entry["python"] == "3.11.7"
    assert entry["cpu_count"] == 4
    assert entry["fastpath_enabled"] is True
    assert entry["quick"] is True
    assert entry["fast"] is True
    assert entry["timestamp"] == "2026-08-07T00:00:00"
    # Degenerate report: no cells.
    empty = history_entry({"cells": []})
    assert empty["cells"] == {} and empty["fast"] is True
