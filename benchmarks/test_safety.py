"""A6 — quantifying the stale-DMA window per mode (safety trade-off)."""

import pytest

from repro.analysis import run_safety


@pytest.mark.benchmark(group="safety")
def test_safety_windows(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_safety(packets=200, flush_threshold=64), rounds=1, iterations=1
    )
    save_artifact("safety", result.render())
    # strict: no exposure at all.
    assert result.exposed_fraction["strict"] == 0.0
    # defer: nearly everything exposed, for ~batch/2 unmaps.
    assert result.exposed_fraction["defer"] > 0.9
    assert result.mean_window_unmaps["defer"] > 10
    # riommu: exposure bounded to the single cached entry, window ~1.
    assert result.mean_window_unmaps["riommu"] < 2.0
    assert result.mean_window_unmaps["riommu"] < result.mean_window_unmaps["defer"] / 10
