"""Performance trajectory harness for the simulator itself.

Times representative evaluation-grid cells and the serial-vs-parallel
grid, then emits ``BENCH_runner.json`` so successive changes to the
simulator have a comparable wall-clock record (the functional results
are pinned elsewhere — this file is about *speed*, not correctness).

Run directly::

    PYTHONPATH=src python benchmarks/perf_harness.py [--jobs N] [--full]

or through the smoke/perf tests in ``test_perf_harness.py``.  Output
goes to ``benchmarks/output/BENCH_runner.json`` by default.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(1, str(pathlib.Path(__file__).resolve().parent))

from repro import datapath as repro_datapath  # noqa: E402
from repro.config import OBSERVE_ENV, OBSERVE_LEVELS, RunConfig  # noqa: E402
from repro.modes import ALL_MODES, Mode  # noqa: E402
from repro.sim import scheduler as repro_scheduler  # noqa: E402
from repro.sim.parallel import grid_cells, resolve_jobs, run_cell, run_grid  # noqa: E402
from repro.sim.runner import BENCHMARK_NAMES, run_with_config  # noqa: E402
from repro.sim.setups import ALL_SETUPS, setup_by_name  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_runner.json"

#: The tracked copy at the repo root: ``benchmarks/output/`` is
#: gitignored scratch space, so the CLI mirrors each report here to
#: keep the perf trajectory visible (and diffable) across commits.
ROOT_OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_runner.json"

#: Cells timed individually: the paper's headline benchmark (stream)
#: under the cheapest and the most expensive protection regimes, plus a
#: request-server workload — enough spread to catch a regression in any
#: of the map/unmap, translation, or byte-copy paths.
REPRESENTATIVE_CELLS: Tuple[Tuple[str, str, str], ...] = (
    ("mlx", "stream", "strict"),
    ("mlx", "stream", "riommu"),
    ("mlx", "stream", "none"),
    ("mlx", "rr", "strict"),
    ("mlx", "memcached", "defer"),
    # The event kernel's multi-domain scaling cell (not a figure-12
    # workload): N independent stream domains on one event heap.
    ("mlx", "mstream", "strict"),
    # The multi-tenant interference scenario (balanced preset): four
    # heterogeneous tenants on one contended IOMMU, under the costliest
    # baseline and under rIOMMU — the scenario sweep's wall-clock cells.
    ("mlx", "tenants", "strict"),
    ("mlx", "tenants", "riommu"),
)

#: The cell the intra-run sharding measurement times serial vs sharded.
SHARDING_CELL: Tuple[str, str, str] = ("mlx", "mstream", "strict")

#: Cells the lite-telemetry overhead measurement times observe=off vs
#: observe=lite: the stream cells, whose observer-free columnar loops
#: the lite tier must leave active.
OBSERVE_CELLS: Tuple[Tuple[str, str, str], ...] = tuple(
    cell for cell in REPRESENTATIVE_CELLS if cell[1] == "stream"
)


def time_repeats(fn, repeats: int = 3) -> List[float]:
    """Wall-clock seconds of each of ``repeats`` calls of ``fn()``."""
    times: List[float] = []
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return times


def time_call(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``."""
    return min(time_repeats(fn, repeats))


def time_representative_cells(
    cells: Sequence[Tuple[str, str, str]] = REPRESENTATIVE_CELLS,
    fast: bool = True,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Best-of wall-clock for each representative cell, in order.

    Each row records the full per-repeat sample (``repeat_seconds``)
    and its relative spread (``(max - min) / min``), so history
    consumers can tell a real regression from timer noise — the
    0.82–0.94 ``speedup_vs_previous`` swings on unchanged cells were
    exactly that noise when ``best_of`` was 1.
    """
    rows: List[Dict[str, object]] = []
    for setup_name, benchmark, mode_label in cells:
        samples = time_repeats(
            lambda: run_cell((setup_name, benchmark, mode_label, fast)), repeats
        )
        best = min(samples)
        rows.append(
            {
                "setup": setup_name,
                "benchmark": benchmark,
                "mode": mode_label,
                "fast": fast,
                "seconds": round(best, 4),
                "best_of": repeats,
                "repeat_seconds": [round(s, 4) for s in samples],
                "spread": round((max(samples) - best) / best, 4) if best else 0.0,
            }
        )
    return rows


def time_grid(
    jobs: Optional[int],
    setups: Iterable[str] = ("mlx", "brcm"),
    benchmarks: Sequence[str] = (),
    modes: Sequence[str] = (),
    fast: bool = True,
) -> Dict[str, object]:
    """Wall-clock the grid serially and with ``jobs`` workers."""
    setup_objs = [setup_by_name(name) for name in setups] or list(ALL_SETUPS)
    mode_objs = [Mode(label) for label in modes] if modes else list(ALL_MODES)
    bench = tuple(benchmarks) or BENCHMARK_NAMES
    n_cells = len(grid_cells(setup_objs, bench, mode_objs, fast))

    workers = resolve_jobs(jobs)
    serial_s = time_call(
        lambda: run_grid(setup_objs, bench, mode_objs, fast, jobs=1), repeats=1
    )
    parallel_s = time_call(
        lambda: run_grid(setup_objs, bench, mode_objs, fast, jobs=workers),
        repeats=1,
    )
    return {
        "cells": n_cells,
        "jobs": workers,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "serial_cells_per_sec": round(n_cells / serial_s, 3),
        "parallel_cells_per_sec": round(n_cells / parallel_s, 3),
        "speedup_vs_serial": round(serial_s / parallel_s, 3),
    }


def time_sharding(
    shards: int = 4,
    fast: bool = True,
    repeats: int = 1,
    cell: Tuple[str, str, str] = SHARDING_CELL,
) -> Dict[str, object]:
    """Wall-clock the multi-ring cell serially and with ``shards`` shards.

    Both runs use the event kernel; the serial run is the deterministic
    reference (one event heap, one process), the sharded run fans
    domains over a worker pool.  Results are bit-identical (the parity
    tests and the perf gate pin this) — only wall-clock differs, and
    only meaningfully when the host actually has cores to use
    (``cpu_count`` is recorded so consumers can judge the number).
    """
    setup_name, benchmark, mode_label = cell
    setup = setup_by_name(setup_name)
    mode = Mode(mode_label)
    serial_config = RunConfig.from_env(fast=fast, engine="events", shards=1)
    sharded_config = RunConfig.from_env(fast=fast, engine="events", shards=shards)
    serial_s = time_call(
        lambda: run_with_config(setup, mode, benchmark, serial_config),
        repeats,
    )
    sharded_s = time_call(
        lambda: run_with_config(setup, mode, benchmark, sharded_config),
        repeats,
    )
    return {
        "cell": "/".join(cell),
        "fast": fast,
        "shards": shards,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "speedup_vs_serial": round(serial_s / sharded_s, 3),
    }


def time_observe_overhead(
    cells: Sequence[Tuple[str, str, str]] = OBSERVE_CELLS,
    fast: bool = True,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Wall-clock each cell under ``observe=off`` and ``observe=lite``.

    The lite tier's contract is "cheap enough to leave on": it reads
    counters at burst boundaries and never touches the trace bus, so
    the columnar fast path stays active in both arms and the overhead
    column should stay within the CI gate's few percent.  (The full
    tier is deliberately not timed here — it vetoes the observer-free
    loops, so its cost is a different build's trajectory, not an
    overhead column.)
    """
    rows: List[Dict[str, object]] = []
    for setup_name, benchmark, mode_label in cells:
        setup = setup_by_name(setup_name)
        mode = Mode(mode_label)
        off_config = RunConfig.from_env(fast=fast, observe="off")
        lite_config = RunConfig.from_env(fast=fast, observe="lite")
        # One untimed pass warms the cell (allocators, memo caches),
        # then the arms alternate so load drift on a shared host hits
        # both equally instead of biasing whichever ran second.
        run_with_config(setup, mode, benchmark, off_config)
        off_s = lite_s = float("inf")
        for _ in range(max(repeats, 1)):
            off_s = min(
                off_s,
                time_call(
                    lambda: run_with_config(setup, mode, benchmark, off_config),
                    repeats=1,
                ),
            )
            lite_s = min(
                lite_s,
                time_call(
                    lambda: run_with_config(setup, mode, benchmark, lite_config),
                    repeats=1,
                ),
            )
        rows.append(
            {
                "cell": f"{setup_name}/{benchmark}/{mode_label}",
                "fast": fast,
                "best_of": repeats,
                "off_seconds": round(off_s, 4),
                "lite_seconds": round(lite_s, 4),
                "overhead_vs_off": round(lite_s / off_s - 1.0, 4),
            }
        )
    return rows


def load_previous_cells(
    output: Optional[pathlib.Path],
) -> Dict[Tuple[str, str, str, bool], float]:
    """Per-cell seconds from an earlier ``BENCH_runner.json``, if any.

    Read *before* the new report overwrites the file, so every run can
    carry a ``speedup_vs_previous`` trajectory marker.  When the
    scratch report is absent (fresh checkout — ``benchmarks/output/`` is
    gitignored) the tracked root copy serves as the baseline, so the
    regression gate works against the committed trajectory.  A missing
    or malformed report just yields no baselines.
    """
    if output is None:
        return {}
    if not output.exists():
        if output != ROOT_OUTPUT and ROOT_OUTPUT.exists():
            return load_previous_cells(ROOT_OUTPUT)
        return {}
    try:
        previous = json.loads(output.read_text())
        return {
            (row["setup"], row["benchmark"], row["mode"], bool(row["fast"])): float(
                row["seconds"]
            )
            for row in previous.get("cells", ())
            if float(row["seconds"]) > 0
        }
    except (ValueError, KeyError, TypeError):
        return {}


def run_harness(
    jobs: Optional[int] = 0,
    fast: bool = True,
    repeats: int = 3,
    setups: Iterable[str] = ("mlx", "brcm"),
    benchmarks: Sequence[str] = (),
    modes: Sequence[str] = (),
    output: Optional[pathlib.Path] = DEFAULT_OUTPUT,
    quick: bool = False,
    shard_bench: Optional[int] = 4,
    observe_bench: bool = True,
) -> Dict[str, object]:
    """Time representative cells + the grid; write ``BENCH_runner.json``.

    ``quick`` times only the representative cells (skipping the
    serial-vs-parallel grid sweep) — the CI perf-smoke configuration.
    Non-quick runs force ``best_of`` to at least 3: single-repeat
    timings polluted the history medians with timer noise, so one-shot
    sampling is reserved for quick smoke runs.
    ``shard_bench`` adds the intra-run sharding measurement (serial vs
    N-shard wall-clock on the multi-ring cell) to the report; None
    skips it.  ``observe_bench`` adds the lite-telemetry overhead
    column (observe=off vs observe=lite on the stream cells).
    """
    if not quick:
        repeats = max(repeats, 3)
    baselines = load_previous_cells(output)
    cells = time_representative_cells(fast=fast, repeats=repeats)
    for row in cells:
        prev = baselines.get(
            (row["setup"], row["benchmark"], row["mode"], bool(row["fast"]))
        )
        if prev is not None and row["seconds"] > 0:
            # > 1.0 means this tree is faster than the committed report.
            row["speedup_vs_previous"] = round(prev / row["seconds"], 3)
    # The one funnel for every knob the timings ran under: the same
    # RunConfig.from_env() the grid workers resolve, so the recorded
    # fields can never drift from what actually executed.
    config = RunConfig.from_env()
    report: Dict[str, object] = {
        "schema": "riommu-repro/bench-runner/v2",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        # v2: which datapath build produced these numbers — consumers
        # must never compare timings across builds.  ``fastpath_enabled``
        # is kept for v1 readers (it mirrors build != scalar).
        "datapath": config.datapath,
        "fastpath_enabled": config.datapath != "scalar",
        # v2: the simulation engine and shard knob the timings ran under
        # (cells time whatever the knobs select; the sharding section
        # below always compares serial vs sharded explicitly).
        "engine": config.engine,
        "shards": config.shards,
        # The observe tier the timed cells ran under (off|lite|full) —
        # like datapath, consumers must never compare across tiers.
        "observe": config.observe,
        "quick": quick,
        "cells": cells,
        "sharding": (
            None
            if not shard_bench or shard_bench <= 1
            else time_sharding(shards=shard_bench, fast=fast)
        ),
        "observe_lite": (
            time_observe_overhead(fast=fast, repeats=repeats)
            if observe_bench
            else None
        ),
        "grid": None if quick else time_grid(jobs, setups, benchmarks, modes, fast),
    }
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n")
        report["output_path"] = str(output)
    return report


def check_regression(
    report: Dict[str, object],
    max_regression: float,
    cell: Tuple[str, str, str] = ("mlx", "stream", "strict"),
) -> Optional[str]:
    """Error string if ``cell`` slowed by more than ``max_regression``.

    Uses ``speedup_vs_previous`` (present only when the previous report
    had the cell): a speedup below ``1 / (1 + max_regression)`` means
    the new time exceeds the old by more than the allowed fraction.
    Returns None when within bounds or when there is no baseline.
    """
    setup_name, benchmark, mode_label = cell
    for row in report["cells"]:
        if (row["setup"], row["benchmark"], row["mode"]) == cell:
            speedup = row.get("speedup_vs_previous")
            if speedup is None:
                return None
            floor = 1.0 / (1.0 + max_regression)
            if speedup < floor:
                return (
                    f"{setup_name}/{benchmark}/{mode_label} regressed: "
                    f"speedup_vs_previous {speedup} < {floor:.3f} "
                    f"(> {max_regression:.0%} slower than the committed baseline)"
                )
            return None
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=0, help="parallel workers (0 = one per CPU)"
    )
    parser.add_argument(
        "--full", action="store_true", help="full-size benchmark runs (slow)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--datapath",
        choices=sorted(repro_datapath.BUILDS),
        default=None,
        help="datapath build to benchmark (default: REPRO_DATAPATH or "
        "the columnar default); recorded in the report's 'datapath' "
        "field so trajectories never mix builds",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(repro_scheduler.ENGINES),
        default=None,
        help="simulation engine to benchmark (default: REPRO_ENGINE or "
        "the event-kernel default); recorded in the report's 'engine' "
        "field",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="intra-run shard count the timed cells run under (default: "
        "REPRO_SHARDS or 1); the explicit serial-vs-sharded comparison "
        "in the report's 'sharding' section is controlled by "
        "--shard-bench, not this",
    )
    parser.add_argument(
        "--shard-bench",
        type=int,
        default=4,
        metavar="N",
        help="shard count for the serial-vs-sharded measurement on the "
        "multi-ring cell (default 4; 0/1 to skip)",
    )
    parser.add_argument(
        "--observe",
        choices=OBSERVE_LEVELS,
        default=None,
        help="observe tier the timed cells run under (default: "
        "REPRO_OBSERVE or off); recorded in the report's 'observe' "
        "field so trajectories never mix tiers",
    )
    parser.add_argument(
        "--no-observe-bench",
        action="store_true",
        help="skip the observe=off vs observe=lite overhead column",
    )
    parser.add_argument(
        "-o", "--output", default=str(DEFAULT_OUTPUT), help="report path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="representative cells only, no grid sweep (CI perf smoke)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit 1 if mlx/stream/strict is more than FRACTION slower "
        "than the previous report (e.g. 0.25 allows +25%%)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="after the timed runs, replay the representative cells once "
        "with the event tracer on and write FILE (JSONL) plus its "
        ".chrome.json/.metrics.json siblings; the timed numbers above "
        "are never taken with tracing enabled",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help="append this run to the perf-history log (default: the "
        "tracked BENCH_history.jsonl at the repo root) and gate "
        "--max-regression against its rolling median instead of the "
        "single previous report",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the history log: no append, and --max-regression "
        "falls back to the one-report speedup_vs_previous gate",
    )
    args = parser.parse_args(argv)
    if args.datapath is not None:
        repro_datapath.set_datapath(args.datapath)
    if args.engine is not None:
        repro_scheduler.set_engine(args.engine)
    if args.shards is not None:
        repro_scheduler.set_shards(args.shards)
    if args.observe is not None:
        os.environ[OBSERVE_ENV] = args.observe
    report = run_harness(
        jobs=args.jobs,
        fast=not args.full,
        repeats=args.repeats,
        output=pathlib.Path(args.output),
        quick=args.quick,
        shard_bench=args.shard_bench,
        observe_bench=not args.no_observe_bench,
    )
    print(json.dumps(report, indent=2))
    # Mirror the report to the tracked root copy so the perf trajectory
    # is visible across commits (run_harness itself stays path-pure for
    # the tests, which write to temporary directories).
    if pathlib.Path(args.output) != ROOT_OUTPUT:
        payload = {k: v for k, v in report.items() if k != "output_path"}
        ROOT_OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report mirrored to {ROOT_OUTPUT}", file=sys.stderr)
    if args.trace is not None:
        from repro.obs import TRACE, export_all

        TRACE.enable()
        try:
            for setup_name, benchmark, mode_label in REPRESENTATIVE_CELLS:
                run_cell((setup_name, benchmark, mode_label, not args.full))
        finally:
            TRACE.disable()
        for kind, path in export_all(TRACE, args.trace).items():
            print(f"trace {kind} written to {path}", file=sys.stderr)
    error: Optional[str] = None
    if args.no_history:
        if args.max_regression is not None:
            error = check_regression(report, args.max_regression)
    else:
        # The rolling-median sentinel: gate against the history *before*
        # this run is appended, then append unconditionally — the log
        # records what happened, robustly (a median shrugs off the
        # outlier this entry may turn out to be).
        import perf_history

        history_path = (
            pathlib.Path(args.history) if args.history else perf_history.ROOT_HISTORY
        )
        history = perf_history.load_history(history_path)
        if args.max_regression is not None:
            if history:
                error = perf_history.check_history_regression(
                    report, history, args.max_regression
                )
            else:
                error = check_regression(report, args.max_regression)
        perf_history.append_history(report, history_path)
        print(
            f"history appended to {history_path} "
            f"({len(history) + 1} entries)",
            file=sys.stderr,
        )
    if error is not None:
        print(error, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
