"""Simulator micro-benchmarks: how fast is the simulation itself?

Unlike the reproduction benches (which regenerate paper artefacts),
these time the *simulator*: map+unmap pairs per second under each
backend, and device-path DMA throughput.  Useful for tracking
performance regressions of the library.
"""

import pytest

from repro.dma import DmaDirection
from repro.kernel import Machine
from repro.modes import Mode

BDF = 0x0300


@pytest.mark.benchmark(group="simulator-ops")
@pytest.mark.parametrize(
    "mode", [Mode.NONE, Mode.STRICT, Mode.STRICT_PLUS, Mode.DEFER_PLUS, Mode.RIOMMU]
)
def test_map_unmap_pair_rate(benchmark, mode):
    machine = Machine(mode)
    api = machine.dma_api(BDF)
    ring = api.create_ring(64)
    phys = machine.mem.alloc_dma_buffer(4096)

    def pair():
        handle = api.map(phys, 1500, DmaDirection.FROM_DEVICE, ring=ring)
        api.unmap(handle, end_of_burst=True)

    benchmark(pair)
    assert api.driver.live_mappings() == 0 if mode is not Mode.NONE else True


@pytest.mark.benchmark(group="simulator-dma")
@pytest.mark.parametrize("mode", [Mode.NONE, Mode.STRICT, Mode.RIOMMU])
def test_translated_dma_write_rate(benchmark, mode):
    machine = Machine(mode)
    api = machine.dma_api(BDF)
    ring = api.create_ring(8)
    phys = machine.mem.alloc_dma_buffer(4096)
    handle = api.map(phys, 4096, DmaDirection.BIDIRECTIONAL, ring=ring)
    payload = b"\x5a" * 1500

    benchmark(machine.bus.dma_write, BDF, handle, payload)
    assert machine.mem.ram.read(phys, 4) == payload[:4]
