"""E6 — regenerate the paper's Table 3 (Netperf RR round-trip times)."""

import pytest

from repro.analysis import run_table3
from repro.modes import ALL_MODES, Mode
from repro.perf import TABLE3_RTT_US


@pytest.mark.benchmark(group="table3")
def test_table3(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_table3(transactions=200, warmup=40), rounds=1, iterations=1
    )
    save_artifact("table3", result.render())
    for setup_name in ("mlx", "brcm"):
        for mode in ALL_MODES:
            measured = result.rtt_us[setup_name][mode]
            paper = TABLE3_RTT_US[setup_name][mode]
            assert measured == pytest.approx(paper, rel=0.08), (setup_name, mode.label)
        # RTT ordering: none fastest, strict slowest.
        rtts = result.rtt_us[setup_name]
        assert rtts[Mode.NONE] == min(rtts.values())
        assert rtts[Mode.STRICT] == max(rtts.values())
