"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper artefact — these probe the *sensitivity* of the reproduced
results to the design knobs: burst amortization, deferred batch size,
rIOTLB prefetch, and the pathological allocator's severity.
"""

import pytest

from repro.analysis import (
    ablate_prefetch,
    sweep_alloc_pathology,
    sweep_burst_length,
    sweep_defer_threshold,
)


@pytest.mark.benchmark(group="ablation")
def test_burst_length_amortization(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: sweep_burst_length(packets=300, warmup=60), rounds=1, iterations=1
    )
    save_artifact("ablation_burst", result.render())
    # Burst=1 pays the full 2x2,150-cycle invalidation per packet; the
    # paper's ~200-packet bursts sit on the flat part of the curve.
    assert result.gbps_at(1) < 0.6 * result.gbps_at(200)
    assert result.gbps_at(64) > 0.95 * result.gbps_at(200)


@pytest.mark.benchmark(group="ablation")
def test_defer_threshold_tradeoff(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: sweep_defer_threshold(packets=300, warmup=60), rounds=1, iterations=1
    )
    save_artifact("ablation_defer_threshold", result.render())
    gbps = {threshold: g for threshold, _c, g in result.points}
    # Batch=1 is strict-like; Linux's 250 buys most of the benefit and
    # larger batches barely help (while widening the unsafe window).
    assert gbps[250] > 1.3 * gbps[1]
    assert gbps[500] < 1.05 * gbps[250]


@pytest.mark.benchmark(group="ablation")
def test_prefetch_ablation(benchmark, save_artifact):
    result = benchmark.pedantic(lambda: ablate_prefetch(packets=300), rounds=1, iterations=1)
    save_artifact("ablation_prefetch", result.render())
    # With prefetch nearly every translation is served from the rIOTLB
    # pair; without it, ring advances fetch from DRAM — but still work.
    assert result.with_prefetch_walk_fraction < 0.05
    assert 0.3 < result.without_prefetch_walk_fraction < 0.7


@pytest.mark.benchmark(group="ablation")
def test_alloc_pathology_sensitivity(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: sweep_alloc_pathology(requests=120), rounds=1, iterations=1
    )
    save_artifact("ablation_alloc_pathology", result.render())
    ratios = dict(result.points)
    assert ratios[1.0] < ratios[4.0] < ratios[8.0]
    # The paper's measured memcached gap (4.88) falls inside the sweep,
    # i.e. is explained by a 4-8x-worse-than-Netperf pathology.
    assert ratios[4.0] < 4.88 < ratios[8.0]


@pytest.mark.benchmark(group="ablation")
def test_ring_sizing(benchmark, save_artifact):
    from repro.analysis import sweep_ring_sizing

    result = benchmark.pedantic(
        lambda: sweep_ring_sizing(live_window=64, burst=16, packets=600),
        rounds=1,
        iterations=1,
    )
    save_artifact("ablation_ring_sizing", result.render())
    rates = dict(result.points)
    # N >= L never pushes back with FIFO retirement (paper: choose N >= L);
    # the whole sweep stays at zero because occupancy never exceeds L.
    assert all(rate == 0.0 for rate in rates.values())


@pytest.mark.benchmark(group="ablation")
def test_ring_undersizing_pushes_back(benchmark, save_artifact):
    from repro.analysis import sweep_ring_sizing

    result = benchmark.pedantic(
        lambda: sweep_ring_sizing(
            live_window=64, burst=16, packets=600, ring_sizes=(32, 48, 56, 64)
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("ablation_ring_undersizing", result.render())
    rates = dict(result.points)
    # Undersized tables (N < L) hit back-pressure; N >= L never does —
    # the paper's "choose N >= L" sizing rule, demonstrated.
    assert rates[32] > 0.0 and rates[48] > 0.0 and rates[56] > 0.0
    assert rates[64] == 0.0


@pytest.mark.benchmark(group="ablation")
def test_iotlb_capacity_sweep(benchmark, save_artifact):
    from repro.analysis import sweep_iotlb_capacity

    result = benchmark.pedantic(
        lambda: sweep_iotlb_capacity(pool_size=512, sends=4000), rounds=1, iterations=1
    )
    save_artifact("ablation_iotlb_capacity", result.render())
    by_capacity = {c: (h, p) for c, h, p in result.points}
    # Hit rate rises and the penalty falls monotonically with capacity.
    assert by_capacity[16][0] < by_capacity[256][0] < by_capacity[1024][0]
    assert by_capacity[16][1] > by_capacity[256][1] > by_capacity[1024][1]
