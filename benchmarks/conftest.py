"""Shared infrastructure for the reproduction benchmarks.

Each benchmark module regenerates one table/figure of the paper.  The
rendered output is printed (visible with ``pytest -s``) and saved under
``benchmarks/output/`` so the artefacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(output_dir):
    """Write a rendered table/figure to benchmarks/output/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
