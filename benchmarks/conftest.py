"""Shared infrastructure for the reproduction benchmarks.

Each benchmark module regenerates one table/figure of the paper.  The
rendered output is printed (visible with ``pytest -s``) and saved under
``benchmarks/output/`` so the artefacts survive the run.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

# Make `import perf_harness` work however pytest is invoked.
sys.path.insert(0, str(pathlib.Path(__file__).parent))


def pytest_collection_modifyitems(config, items):
    """Make ``@pytest.mark.perf`` timing tests opt-in.

    They run only when explicitly selected (``-m perf`` / ``-m "perf
    ..."``) or with ``REPRO_RUN_PERF=1``; otherwise they are skipped so
    ordinary benchmark runs stay load-insensitive.
    """
    if os.environ.get("REPRO_RUN_PERF") == "1":
        return
    if "perf" in (config.getoption("-m") or ""):
        return
    skip = pytest.mark.skip(reason="perf test: opt in with -m perf or REPRO_RUN_PERF=1")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(output_dir):
    """Write a rendered table/figure to benchmarks/output/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
