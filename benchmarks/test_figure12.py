"""E4 — regenerate the paper's Figure 12 (the full evaluation grid)."""

import pytest

from repro.analysis.figure12 import Figure12Result
from repro.modes import ALL_MODES, Mode
from repro.sim import run_figure12


@pytest.fixture(scope="module")
def grid():
    return run_figure12(fast=False)


@pytest.mark.benchmark(group="figure12")
def test_figure12(benchmark, save_artifact, grid):
    result = benchmark.pedantic(lambda: Figure12Result(grid=grid), rounds=1, iterations=1)
    save_artifact("figure12", result.render())

    mlx_stream = grid.panel("mlx", "stream")
    assert mlx_stream[Mode.RIOMMU].gbps / mlx_stream[Mode.NONE].gbps == pytest.approx(
        0.77, abs=0.03
    )
    brcm_stream = grid.panel("brcm", "stream")
    for mode in ALL_MODES:
        if mode is Mode.STRICT:
            assert brcm_stream[mode].gbps < 10.0
        else:
            assert brcm_stream[mode].gbps == 10.0

    # Apache 1K: both setups serve ~12K requests/s with the IOMMU off (§5.2).
    for setup in ("mlx", "brcm"):
        none = grid.get(setup, "apache 1K", Mode.NONE)
        assert none.requests_per_sec == pytest.approx(12_000, rel=0.08)

    # Memcached is an order of magnitude faster than Apache 1K (§5.2).
    for setup in ("mlx", "brcm"):
        memcached = grid.get(setup, "memcached", Mode.NONE).requests_per_sec
        apache = grid.get(setup, "apache 1K", Mode.NONE).requests_per_sec
        assert memcached > 8 * apache
