"""E7 — regenerate the §5.3 IOTLB miss-penalty experiment."""

import pytest

from repro.analysis import run_miss_penalty


@pytest.mark.benchmark(group="miss-penalty")
def test_miss_penalty(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_miss_penalty(pool_size=512, sends=4000), rounds=1, iterations=1
    )
    save_artifact("miss_penalty", result.render())
    # Paper: ~1,532 cycles, ~0.5 us.
    assert 1200 <= result.miss_penalty_cycles <= 1600
    assert 0.38 <= result.miss_penalty_us <= 0.55
    assert result.single_hit_rate > 0.999
    assert result.pool_hit_rate < 0.2
