"""Micro-benchmark of the burst translate+charge loop, per datapath build.

The full perf harness times whole evaluation-grid cells — workload
model, NIC, interrupt coalescing and all.  This file isolates the one
loop the datapath builds actually specialize: map a burst, DMA every
packet, unmap the burst (end-of-burst invalidation), repeat.  One
machine per (build, mode), no workload model around it.

For each mode it prints per-build wall-clock and bursts/second plus
the columnar/scalar ratio, and **asserts the modelled overhead cycles
are bit-identical across builds** — a micro-scale restatement of the
parity contract (`tests/test_datapath_parity.py` pins the full one).

    PYTHONPATH=src python benchmarks/micro_datapath.py
    PYTHONPATH=src python benchmarks/micro_datapath.py --profile   # + cProfile
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import datapath as repro_datapath  # noqa: E402
from repro.api import (  # noqa: E402
    DmaDirection,
    Machine,
    MapRequest,
    Mode,
    UnmapRequest,
)

#: Modes spanning the datapaths being specialized: the radix+rbtree
#: worst case, the paper's design, and the unprotected floor.
DEFAULT_MODES: Tuple[str, ...] = ("strict", "riommu", "none")

PACKET = b"\xa5" * 1500


def run_bursts(mode_label: str, bursts: int, burst_size: int) -> float:
    """Drive ``bursts`` map→DMA→unmap bursts; returns the machine's
    final overhead-cycle count (build-invariant by contract)."""
    machine = Machine(Mode(mode_label))
    api = machine.dma_api(bdf=0x0300)
    ring = api.create_ring(max(256, burst_size * 2))
    buffers = [machine.mem.alloc_dma_buffer(2048) for _ in range(burst_size)]
    dma_write = machine.bus.dma_write
    for _ in range(bursts):
        handles = [
            api.map_request(
                MapRequest(
                    phys_addr=phys,
                    size=1500,
                    direction=DmaDirection.FROM_DEVICE,
                    ring=ring,
                )
            ).device_addr
            for phys in buffers
        ]
        for handle in handles:
            dma_write(0x0300, handle, PACKET)
        last = len(handles) - 1
        for index, handle in enumerate(handles):
            api.unmap_request(
                UnmapRequest(device_addr=handle, end_of_burst=index == last)
            )
    return api.overhead_cycles


def bench(
    modes: Sequence[str],
    bursts: int,
    burst_size: int,
    builds: Sequence[str] = repro_datapath.BUILDS,
) -> List[Dict[str, object]]:
    """Time the burst loop for every (mode, build); verify cycle parity."""
    rows: List[Dict[str, object]] = []
    for mode_label in modes:
        timings: Dict[str, float] = {}
        cycles: Dict[str, float] = {}
        for build in builds:
            repro_datapath.set_datapath(build)
            run_bursts(mode_label, bursts=2, burst_size=burst_size)  # warmup
            started = time.perf_counter()
            cycles[build] = run_bursts(mode_label, bursts, burst_size)
            timings[build] = time.perf_counter() - started
        if len(set(cycles.values())) != 1:
            raise AssertionError(
                f"{mode_label}: overhead cycles diverge across builds: {cycles}"
            )
        rows.append(
            {
                "mode": mode_label,
                "bursts": bursts,
                "burst_size": burst_size,
                "overhead_cycles": next(iter(cycles.values())),
                "seconds": {b: round(s, 4) for b, s in timings.items()},
                "bursts_per_sec": {
                    b: round(bursts / s, 1) for b, s in timings.items()
                },
                "columnar_vs_scalar": (
                    round(timings["scalar"] / timings["columnar"], 3)
                    if "scalar" in timings and "columnar" in timings
                    else None
                ),
            }
        )
    repro_datapath.set_datapath(repro_datapath.DEFAULT_BUILD)
    return rows


def render(rows: Sequence[Dict[str, object]]) -> str:
    lines = [
        f"{'mode':8s} {'build':9s} {'seconds':>9s} {'bursts/s':>10s}",
    ]
    for row in rows:
        for build, seconds in row["seconds"].items():
            lines.append(
                f"{row['mode']:8s} {build:9s} {seconds:9.4f} "
                f"{row['bursts_per_sec'][build]:10.1f}"
            )
        ratio = row["columnar_vs_scalar"]
        if ratio is not None:
            lines.append(
                f"{row['mode']:8s} columnar/scalar = {ratio}x "
                f"(cycles identical: {row['overhead_cycles']})"
            )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bursts", type=int, default=800, help="timed bursts per build"
    )
    parser.add_argument(
        "--burst-size", type=int, default=64, help="packets per burst"
    )
    parser.add_argument(
        "--modes",
        default=",".join(DEFAULT_MODES),
        help="comma-separated mode labels (default: strict,riommu,none)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=20,
        default=None,
        type=int,
        metavar="N",
        help="additionally profile the columnar arm under cProfile and "
        "print the top N functions by internal time (default 20)",
    )
    args = parser.parse_args(argv)
    modes = tuple(label.strip() for label in args.modes.split(",") if label.strip())

    rows = bench(modes, bursts=args.bursts, burst_size=args.burst_size)
    print(render(rows))

    if args.profile is not None:
        import cProfile
        import io
        import pstats

        repro_datapath.set_datapath("columnar")
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            for mode_label in modes:
                run_bursts(mode_label, args.bursts, args.burst_size)
        finally:
            profiler.disable()
            repro_datapath.set_datapath(repro_datapath.DEFAULT_BUILD)
        table = io.StringIO()
        pstats.Stats(profiler, stream=table).sort_stats("tottime").print_stats(
            max(args.profile, 1)
        )
        print(
            f"\n--- cProfile (columnar build): top {max(args.profile, 1)} "
            f"by internal time ---\n{table.getvalue().rstrip()}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
