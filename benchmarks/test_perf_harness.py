"""Tests for the perf trajectory harness.

The smoke test always runs (tiny grid, asserts the report shape and
that ``BENCH_runner.json`` lands on disk).  The timing assertions are
``@pytest.mark.perf`` — opt-in, because wall-clock thresholds are
meaningless on loaded or single-core CI machines.  Run them with
``pytest -m perf benchmarks/test_perf_harness.py`` or
``REPRO_RUN_PERF=1 pytest benchmarks/``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from perf_harness import DEFAULT_OUTPUT, run_harness, time_call


def test_harness_smoke_emits_report(tmp_path):
    """A tiny harness run produces a well-formed BENCH_runner.json."""
    out = tmp_path / "BENCH_runner.json"
    report = run_harness(
        jobs=2,
        fast=True,
        repeats=1,
        setups=("mlx",),
        benchmarks=("rr",),
        modes=("strict", "none"),
        output=out,
    )
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "riommu-repro/bench-runner/v2"
    assert on_disk["datapath"] in ("scalar", "batched", "columnar")
    assert on_disk["fastpath_enabled"] == (on_disk["datapath"] != "scalar")
    assert on_disk["grid"]["cells"] == 2
    assert on_disk["grid"]["serial_seconds"] > 0
    assert on_disk["grid"]["parallel_seconds"] > 0
    assert on_disk["grid"]["speedup_vs_serial"] > 0
    assert len(on_disk["cells"]) == 8
    for row in on_disk["cells"]:
        assert row["seconds"] > 0
    # The tenant sweep cells ride in the representative set: the
    # balanced multi-tenant scenario under strict and under rIOMMU.
    tenant_rows = [r for r in on_disk["cells"] if r["benchmark"] == "tenants"]
    assert {r["mode"] for r in tenant_rows} == {"strict", "riommu"}
    assert on_disk["engine"] in ("loop", "events")
    assert on_disk["shards"] >= 1
    assert on_disk["observe"] in ("off", "lite", "full")
    sharding = on_disk["sharding"]
    assert sharding["cell"] == "mlx/mstream/strict"
    assert sharding["serial_seconds"] > 0
    assert sharding["sharded_seconds"] > 0
    assert sharding["speedup_vs_serial"] > 0
    # The lite-telemetry overhead column: every stream cell timed under
    # observe=off and observe=lite, with the ratio spelled out.
    lite_rows = on_disk["observe_lite"]
    assert [row["cell"] for row in lite_rows] == [
        "mlx/stream/strict",
        "mlx/stream/riommu",
        "mlx/stream/none",
    ]
    for row in lite_rows:
        assert row["off_seconds"] > 0
        assert row["lite_seconds"] > 0
        # seconds are rounded to 4 decimals in the report, so the
        # recomputed ratio only matches loosely on fast (tiny) cells.
        assert row["overhead_vs_off"] == pytest.approx(
            row["lite_seconds"] / row["off_seconds"] - 1.0, abs=0.01
        )
    assert report["output_path"] == str(out)


def test_observe_bench_can_be_skipped(tmp_path):
    out = tmp_path / "BENCH_runner.json"
    report = run_harness(
        jobs=1,
        repeats=1,
        setups=("mlx",),
        benchmarks=("rr",),
        modes=("strict",),
        output=out,
        quick=True,
        shard_bench=0,
        observe_bench=False,
    )
    assert report["observe_lite"] is None


def test_default_output_location():
    """The default report path sits under benchmarks/output/."""
    assert DEFAULT_OUTPUT.name == "BENCH_runner.json"
    assert DEFAULT_OUTPUT.parent.name == "output"


def test_shard_speedup_skip_predicate():
    """The gate skips exactly when the host has fewer cores than shards."""
    import perf_gate

    assert perf_gate.shard_speedup_skip_reason(4, cores=1) is not None
    assert perf_gate.shard_speedup_skip_reason(4, cores=3) is not None
    assert perf_gate.shard_speedup_skip_reason(4, cores=4) is None
    assert perf_gate.shard_speedup_skip_reason(4, cores=16) is None
    assert perf_gate.shard_speedup_skip_reason(1, cores=1) is None


def test_shard_speedup_skips_without_timing(monkeypatch):
    """Under-provisioned hosts never time the cell (no misleading ratio)."""
    import perf_gate

    monkeypatch.setattr(perf_gate.os, "cpu_count", lambda: 1)
    monkeypatch.setattr(
        perf_gate,
        "time_sharding",
        lambda **kwargs: pytest.fail("time_sharding must not run when skipped"),
    )
    measurement, errors = perf_gate.check_shard_speedup(1.5, shards=4)
    assert errors == []
    assert measurement["skipped"] is True
    assert measurement["enforced"] is False
    assert "1 cores < 4 shards" in measurement["skip_reason"]
    assert "speedup_vs_serial" not in measurement


def test_lite_overhead_gate_quantifies_breaches(monkeypatch):
    """The gate compares the aggregate and quantifies a breach.

    Gating per cell would fail on scheduler jitter (the fastest stream
    cell is ~13ms at fast sizing); the aggregate is what the 3% CI
    contract holds.
    """
    import perf_gate

    rows = [
        {"cell": "mlx/stream/strict", "off_seconds": 0.10,
         "lite_seconds": 0.101, "overhead_vs_off": 0.01},
        {"cell": "mlx/stream/riommu", "off_seconds": 0.10,
         "lite_seconds": 0.12, "overhead_vs_off": 0.20},
    ]
    monkeypatch.setattr(
        perf_gate, "time_observe_overhead", lambda **kwargs: [dict(r) for r in rows]
    )
    # Aggregate: 0.221 / 0.20 - 1 = +10.5% — over a 3% gate.
    measurement, errors = perf_gate.check_lite_overhead(0.03)
    assert len(errors) == 1
    assert "+10.5%" in errors[0] and "<= 3%" in errors[0]
    assert measurement["overhead_vs_off"] == pytest.approx(0.105)
    assert measurement["max_overhead"] == 0.03
    assert [row["cell"] for row in measurement["cells"]] == [
        "mlx/stream/strict", "mlx/stream/riommu",
    ]
    # ... and clean under a tolerance that admits it.
    _, clean = perf_gate.check_lite_overhead(0.25)
    assert clean == []


@pytest.mark.perf
def test_fastpath_speeds_up_single_cell():
    """The stream cell must be >= 15% faster with fast paths enabled.

    The slow path is forced in a subprocess via REPRO_DISABLE_FASTPATH
    (the flag is read at import time), so both arms measure the same
    code on the same machine back to back.  Note the flag only gates
    the chunk-loop fast paths and the translation memo; the always-on
    micro-optimisations (context-lookup cache, cached rbtree keys,
    inlined cacheline arithmetic) speed up *both* arms, which is why
    this toggle shows ~20% while the improvement against the
    pre-optimisation tree is >= 25% (pinned at PR time: 0.40s vs the
    0.57s baseline for this cell, ~30%).
    """
    code = (
        "import time\n"
        "from repro.sim.parallel import run_cell\n"
        "cell = ('mlx', 'stream', 'strict', False)\n"
        "best = min(\n"
        "    (lambda t0: (run_cell(cell), time.perf_counter() - t0)[1])(\n"
        "        time.perf_counter())\n"
        "    for _ in range(3)\n"
        ")\n"
        "print(best)\n"
    )

    def run(extra_env):
        env = dict(os.environ, **extra_env)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        return float(out.stdout.strip())

    fast = run({})
    slow = run({"REPRO_DISABLE_FASTPATH": "1"})
    assert fast <= slow * 0.85, f"fastpath {fast:.3f}s vs slowpath {slow:.3f}s"


@pytest.mark.perf
@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs >= 4 CPUs")
def test_parallel_grid_speedup():
    """jobs=4 must beat serial by >= 2x on a 4-core machine."""
    from repro.sim.runner import run_figure12

    serial = time_call(lambda: run_figure12(fast=True, jobs=1), repeats=1)
    parallel = time_call(lambda: run_figure12(fast=True, jobs=4), repeats=1)
    assert parallel <= serial / 2, f"serial {serial:.2f}s, jobs=4 {parallel:.2f}s"
