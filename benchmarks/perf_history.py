"""Perf-history regression sentinel: the append-only wall-clock log.

``BENCH_runner.json`` is a snapshot — it remembers exactly one previous
run, so the regression gate compares against whatever happened to run
last and a single noisy baseline can mask (or fabricate) a regression.
This module gives the harness a *trajectory*: every run appends one
line to ``BENCH_history.jsonl`` (schema-versioned JSONL, git-trackable,
append-only) and the gate compares the new time against the **rolling
median** of the last few entries, which a single outlier cannot move.

Used by ``perf_harness.py --max-regression`` (the CI perf job) and
directly::

    PYTHONPATH=src python benchmarks/perf_harness.py --quick \
        --max-regression 0.25 --history BENCH_history.jsonl
"""

from __future__ import annotations

import json
import pathlib
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

#: Schema identifier carried by every history line.  v2 added the
#: ``datapath`` build field; v3 adds the ``observe`` tier.  Older
#: entries are still read (the build is inferred from
#: ``fastpath_enabled``, the tier defaults to ``off`` — nothing before
#: v3 ever timed an observed run).
HISTORY_SCHEMA = "riommu-repro/bench-history/v3"

#: The tracked history log at the repo root (``benchmarks/output/`` is
#: gitignored scratch, the trajectory belongs in version control).
ROOT_HISTORY = pathlib.Path(__file__).parent.parent / "BENCH_history.jsonl"

#: Entries folded into the rolling baseline by default.
DEFAULT_WINDOW = 5

#: The gate's default cell — the paper's headline benchmark under the
#: most expensive protection regime (same default as the snapshot gate).
DEFAULT_CELL: Tuple[str, str, str] = ("mlx", "stream", "strict")


def cell_key(setup: str, benchmark: str, mode: str) -> str:
    """The history key for one grid cell: ``setup/benchmark/mode``."""
    return f"{setup}/{benchmark}/{mode}"


def report_datapath(report: Dict[str, object]) -> str:
    """The datapath build a report (or history entry) was taken under.

    v2 artifacts carry it explicitly; for v1 artifacts it is inferred
    from ``fastpath_enabled`` (the only build toggle that existed then:
    fastpath off meant the scalar loops, on meant the batched ones).
    """
    build = report.get("datapath")
    if isinstance(build, str) and build:
        return build
    return "batched" if report.get("fastpath_enabled", True) else "scalar"


def report_observe(report: Dict[str, object]) -> str:
    """The observe tier a report (or history entry) was taken under.

    v3 artifacts carry it explicitly; anything older predates the lite
    tier and was always timed unobserved, so the default is ``off``.
    """
    observe = report.get("observe")
    if isinstance(observe, str) and observe:
        return observe
    return "off"


def history_entry(report: Dict[str, object]) -> Dict[str, object]:
    """Fold one ``BENCH_runner.json`` report into a history line."""
    rows = list(report.get("cells") or ())
    cells = {
        cell_key(row["setup"], row["benchmark"], row["mode"]): float(row["seconds"])
        for row in rows
    }
    entry = {
        "schema": HISTORY_SCHEMA,
        "timestamp": report.get("timestamp"),
        "python": report.get("python"),
        "cpu_count": report.get("cpu_count"),
        "datapath": report_datapath(report),
        "fastpath_enabled": report.get("fastpath_enabled"),
        # v3: the observe tier the timings ran under — like the build,
        # the sentinel never compares medians across tiers.
        "observe": report_observe(report),
        "quick": report.get("quick"),
        "fast": bool(rows[0]["fast"]) if rows else True,
        "cells": cells,
    }
    # v2/v3 extensions carried through when the report has them: the
    # simulation engine the timings were taken under, the intra-run
    # sharding measurement (serial vs sharded wall-clock on the
    # multi-ring cell), and the observe=off vs observe=lite overhead
    # column.
    if report.get("engine") is not None:
        entry["engine"] = report["engine"]
    if report.get("sharding") is not None:
        entry["sharding"] = report["sharding"]
    if report.get("observe_lite") is not None:
        entry["observe_lite"] = report["observe_lite"]
    return entry


def append_history(
    report: Dict[str, object], path: pathlib.Path = ROOT_HISTORY
) -> Dict[str, object]:
    """Append the report's history line to ``path``; returns the entry."""
    entry = history_entry(report)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: pathlib.Path = ROOT_HISTORY) -> List[Dict[str, object]]:
    """All well-formed history entries, oldest first.

    Malformed lines and entries with a foreign schema are skipped — an
    append-only log that survives merges must tolerate damage without
    taking the perf gate down with it.
    """
    if not pathlib.Path(path).exists():
        return []
    entries: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if (
                isinstance(entry, dict)
                and str(entry.get("schema", "")).startswith("riommu-repro/bench-history/")
                and isinstance(entry.get("cells"), dict)
            ):
                entries.append(entry)
    return entries


def rolling_baseline(
    history: Sequence[Dict[str, object]],
    cell: Tuple[str, str, str] = DEFAULT_CELL,
    window: int = DEFAULT_WINDOW,
    datapath: Optional[str] = None,
    quick: Optional[bool] = None,
    observe: Optional[str] = None,
) -> Optional[float]:
    """Median seconds of the cell's last ``window`` history entries.

    With ``datapath`` set, only entries taken under that build
    contribute — a columnar run must never be judged against scalar
    medians (or vice versa).  With ``quick`` set, only entries with the
    matching quick flag contribute: quick runs (representative cells
    only) and full runs (with the grid sweep warm in the process) have
    different cache behaviour and must never share a baseline.  Entries
    predating the quick field count as full runs.  With ``observe``
    set, only entries timed under that tier contribute (entries
    predating the field count as ``off`` — no pre-v3 run was observed).
    """
    key = cell_key(*cell)
    series = [
        float(entry["cells"][key])
        for entry in history
        if key in entry["cells"]
        and float(entry["cells"][key]) > 0
        and (datapath is None or report_datapath(entry) == datapath)
        and (quick is None or bool(entry.get("quick")) == quick)
        and (observe is None or report_observe(entry) == observe)
    ]
    if not series:
        return None
    return statistics.median(series[-max(window, 1):])


def check_history_regression(
    report: Dict[str, object],
    history: Sequence[Dict[str, object]],
    max_regression: float,
    cell: Tuple[str, str, str] = DEFAULT_CELL,
    window: int = DEFAULT_WINDOW,
) -> Optional[str]:
    """Error string if ``cell`` exceeds the rolling baseline's tolerance.

    Compares the fresh report's wall-clock against the median of the
    last ``window`` history entries taken under the same datapath
    build, the same quick flag *and* the same observe tier; ``None``
    when within ``baseline * (1 + max_regression)`` or when there is
    no comparable baseline.
    """
    build = report_datapath(report)
    quick = bool(report.get("quick"))
    observe = report_observe(report)
    baseline = rolling_baseline(
        history, cell, window, datapath=build, quick=quick, observe=observe
    )
    if baseline is None:
        return None
    current = None
    for row in report.get("cells") or ():
        if (row["setup"], row["benchmark"], row["mode"]) == cell:
            current = float(row["seconds"])
            break
    if current is None or current <= 0:
        return None
    limit = baseline * (1.0 + max_regression)
    if current > limit:
        kind = "quick" if quick else "full"
        tier = "" if observe == "off" else f" observe={observe}"
        return (
            f"{cell_key(*cell)} regressed: {current:.4f}s > {limit:.4f}s "
            f"(rolling median of last {min(len(history), window)} "
            f"{build}-build {kind}{tier} runs is {baseline:.4f}s, "
            f"tolerance {max_regression:.0%})"
        )
    return None
