"""E5 — regenerate the paper's Table 2 (normalised performance)."""

import pytest

from repro.analysis import table2_from_grid
from repro.analysis.paper_data import PAPER_TABLE2, TABLE2_DENOMINATORS
from repro.modes import Mode
from repro.sim import run_figure12


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: table2_from_grid(run_figure12(fast=False)), rounds=1, iterations=1
    )
    save_artifact("table2", result.render())

    # The anchor cells of the abstract must land within 10% of the paper.
    assert result.cell(
        "mlx", "stream", "throughput", Mode.RIOMMU, Mode.STRICT
    ) == pytest.approx(7.56, rel=0.10)
    assert result.cell(
        "mlx", "stream", "throughput", Mode.RIOMMU, Mode.NONE
    ) == pytest.approx(0.77, rel=0.05)
    assert result.cell(
        "mlx", "stream", "throughput", Mode.RIOMMU_NC, Mode.NONE
    ) == pytest.approx(0.52, rel=0.05)
    assert result.cell(
        "brcm", "stream", "throughput", Mode.RIOMMU, Mode.STRICT
    ) == pytest.approx(2.17, rel=0.12)
    assert result.cell(
        "brcm", "stream", "cpu", Mode.RIOMMU, Mode.STRICT
    ) == pytest.approx(0.36, abs=0.08)

    # Every mlx stream cell within 12%.
    for numerator in (Mode.RIOMMU, Mode.RIOMMU_NC):
        for denominator in TABLE2_DENOMINATORS:
            measured = result.cell("mlx", "stream", "throughput", numerator, denominator)
            paper = PAPER_TABLE2["mlx"]["stream"]["throughput"][numerator][denominator]
            assert measured == pytest.approx(paper, rel=0.12)
