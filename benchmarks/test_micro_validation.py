"""Ablation: the mode ordering must emerge under MICRO (uncalibrated) costs."""

import pytest

from repro.analysis import run_micro_validation


@pytest.mark.benchmark(group="micro")
def test_micro_ordering_emerges(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_micro_validation(packets=300, warmup=60), rounds=1, iterations=1
    )
    save_artifact("micro_validation", result.render())
    # Under primitive costs x real operation counts — no Table 1 — the
    # paper's throughput ordering still emerges.
    assert result.ordering_matches_paper()
    # And the structural reasons hold: the micro gap between riommu- and
    # riommu is pure coherency maintenance.
    from repro.modes import Mode

    gap = (
        result.micro[Mode.RIOMMU_NC].cycles_per_packet
        - result.micro[Mode.RIOMMU].cycles_per_packet
    )
    assert gap == pytest.approx(1100, rel=0.15)
